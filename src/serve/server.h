#pragma once
// The scenario service daemon: a long-running server that accepts
// line-delimited JSON requests (serve/protocol.h) over a Unix-domain stream
// socket and/or a watched spool directory, executes them on the existing
// fault-tolerant execution layer, and streams JSONL response frames back.
//
// The daemon is deliberately a THIN shell over the robustness layer the
// repository already has — it adds transports and multi-client scheduling,
// never new execution semantics:
//   * admission control / deadlines / retry / degrade are the Runner's own
//     (RunnerOptions built from ServeOptions per request), so an over-budget
//     request gets the same kRejected frame the offline runner emits;
//   * every request runs under the session's CancelToken, which is a child
//     of the daemon-wide shutdown token — SIGINT/SIGTERM (request_stop())
//     drains gracefully: accepting stops, queued requests get kCancelled
//     error frames, in-flight requests finish under their own deadlines
//     (optionally bounded by ServeOptions::drain_ms, which arms a deadline
//     on the shutdown token).  A second request_stop() cancels outright.
//   * the content-addressed ResultCache is shared across ALL connections,
//     so two clients sweeping overlapping grids share evaluations exactly
//     like the chunks of one offline sweep do.
//
// Scheduling: each connection is a strict FIFO and has AT MOST ONE request
// in flight, so one connection's frames always arrive in its own submission
// order.  Across connections a worker pool drains the FIFOs cost-weighted
// round-robin: the eligible session with the least accumulated
// request_cost() virtual time runs next, so a client streaming huge sweeps
// cannot starve one running cheap enumerations.  Eligibility includes the
// backpressure gate: a session whose bounded output queue is full (slow or
// dead reader) is simply not scheduled, and a worker mid-request blocks in
// push_frame() — each request executes with a serial engine fan-out
// (parallelism comes from concurrent requests across the pool), so a
// blocked worker never captures the shared engine ThreadPool.
//
// Spool mode (--spool): files dropped into the directory as NAME.req (one
// request line each, write-then-rename like every durable file in this
// repo) are claimed by renaming to NAME.req.claimed, answered into
// NAME.out (written as NAME.out.partial, renamed when complete), and the
// input sealed as NAME.req.done.  A crash leaves .claimed/.partial pairs;
// the next start() reclaims them (rename .req.claimed back to .req, delete
// .out.partial) so no spool request is ever orphaned.
//
// Crash safety (state_dir): with a state directory configured, every
// admitted request that carries a request_id is journaled through
// serve/journal.h (accepted -> running -> done|failed|cancelled) and its
// response frames are spooled durably as they are emitted.  On start() the
// journal is replayed: incomplete socket-origin requests are re-queued
// under their original ids (spool-origin ones re-arrive through their
// reclaimed .req files), terminal ids re-submitted by a client are answered
// straight from the frame spool (requests_deduped), and a re-submission of
// an id that is currently queued/running becomes a FOLLOWER — it receives
// the one active run's frames when that run settles instead of executing
// twice.  Sweep requests checkpoint through the PR 5 fingerprinted resume
// tokens (scenario/sweep.h) next to their frame spool, so a restarted
// daemon re-evaluates only grid points past the last checkpoint and the
// recovered frame stream is byte-identical to an uninterrupted run.
//
// Fault injection: the "accept" / "session" / "respond" serve sites
// (scenario/faultplan.h) key on connection / request / frame ordinals and
// model torn-down connections, rejected requests and broken client pipes;
// "journal" / "crash" (serve/journal.h) model lost durable appends and
// SIGKILL kill points for the recovery harness (tools/recovery_smoke.cpp).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scenario/result_cache.h"
#include "scenario/runner.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "sim/engine/cancel.h"

namespace arsf::scenario {
class FaultInjector;  // scenario/faultplan.h
}

namespace arsf::serve {

struct ServeOptions {
  /// Unix-domain stream socket to listen on (empty = no socket transport).
  /// A stale file at this path is unlinked at start.
  std::string socket_path;
  /// Watched spool directory (empty = no spool transport).  Created if
  /// missing.  At least one transport must be configured.
  std::string spool_dir;
  /// Request executor threads (0 = hardware concurrency).
  unsigned workers = 0;

  // Per-request execution policy, applied through RunnerOptions — identical
  // semantics (and identical frames) to the offline runner's flags.
  std::uint64_t default_deadline_ms = 0;  ///< for requests without their own
  std::uint64_t admission_budget = 0;     ///< estimated_worlds() gate (0 = off)
  bool degrade = false;                   ///< smoke-variant re-admission
  scenario::RetryPolicy retry;

  /// Shared result cache budget in bytes (0 = no cache).
  std::uint64_t cache_bytes = 0;
  /// Persistent cache store: loaded at start(), saved on clean shutdown
  /// (empty = in-memory only; ignored when cache_bytes == 0).
  std::string cache_file;

  /// Graceful-stop bound: this many ms after request_stop(), a deadline on
  /// the shutdown token cancels whatever is still in flight (0 = in-flight
  /// requests are bounded only by their own deadlines).
  std::uint64_t drain_ms = 0;

  /// Sweep chunking for sweep requests (SweepRunOptions::chunk_scenarios).
  std::size_t chunk_scenarios = 256;
  /// Spool directory scan period.
  std::uint64_t spool_poll_ms = 50;

  /// Durable state directory (request journal + frame spool + sweep
  /// checkpoints; see the crash-safety notes above).  Empty = no journal:
  /// the daemon runs exactly as before, with no crash-safety.  Only
  /// requests that carry a request_id are journaled — an id is the unit of
  /// exactly-once recovery.
  std::string state_dir;
  /// Cache store reload poll period in ms (0 = off): the daemon re-loads
  /// cache_file whenever its mtime changes, picking up externally-written
  /// entries without a restart.  Requires cache_bytes > 0 and a cache_file.
  std::uint64_t cache_reload_ms = 0;

  SessionLimits limits;

  /// Serve-site fault injection for the chaos harness (nullptr = none).
  /// Also forwarded to the Runner, arming the execution-layer sites.
  const scenario::FaultInjector* fault_injector = nullptr;
};

/// Monotonic daemon counters (snapshot via Server::stats()).
struct ServeStats {
  std::uint64_t connections_accepted = 0;  ///< socket accepts (incl. faulted)
  std::uint64_t connections_faulted = 0;   ///< torn down by the "accept" site
  std::uint64_t spool_files = 0;           ///< spool requests claimed
  std::uint64_t requests_accepted = 0;     ///< parsed and queued
  std::uint64_t requests_rejected = 0;     ///< parse/limit/fault rejections
  std::uint64_t requests_completed = 0;    ///< ran to a done frame
  std::uint64_t requests_failed = 0;       ///< aborted by a non-cancel error
  std::uint64_t requests_cancelled = 0;    ///< shutdown / dead-connection drops
  std::uint64_t frames_written = 0;        ///< frames delivered to transports
  std::uint64_t spool_reclaimed = 0;       ///< orphaned .claimed/.partial reclaimed at boot
  std::uint64_t journal_recovered = 0;     ///< incomplete requests re-queued at boot
  std::uint64_t journal_rejected = 0;      ///< torn/corrupt journal lines dropped at boot
  std::uint64_t requests_deduped = 0;      ///< ids answered from the journal/frame spool
  std::uint64_t sweeps_resumed = 0;        ///< sweep runs resumed from a checkpoint
  std::uint64_t cache_reloads = 0;         ///< cache store reloads (mtime changed)
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the transports and spawns the accept/spool/worker threads.
  /// Throws std::invalid_argument on bad options and std::runtime_error on
  /// transport setup failure.
  void start();

  /// Blocks until a request_stop() arrives, then runs the drain sequence
  /// (see file comment) to completion and returns.  Call from the thread
  /// that owns the daemon's lifetime (the entry point's main thread).
  void wait();

  /// Initiates shutdown.  Async-signal-safe (atomic increment + pipe
  /// write): call it straight from a SIGINT/SIGTERM handler.  First call
  /// drains gracefully; a second call hard-cancels in-flight work.
  void request_stop() noexcept;

  /// request_stop() + wait(), for in-process embedders (tests).
  void stop();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept { return options_; }
  /// The shared result cache, when enabled (tests inspect hit counts).
  [[nodiscard]] scenario::ResultCache* cache() noexcept {
    return cache_ ? &*cache_ : nullptr;
  }
  /// The durable request journal, when a state_dir is configured (tests
  /// inspect records and frame spools).
  [[nodiscard]] Journal* journal() noexcept { return journal_ ? &*journal_ : nullptr; }

 private:
  struct Connection;

  // Transport threads.
  void accept_loop();
  void spool_loop();
  void scan_spool_dir();
  void reader_loop(Connection* conn);
  void writer_loop(Connection* conn);
  void spool_writer_loop(Connection* conn);
  [[nodiscard]] bool write_all(int fd, const std::string& data, Session& session);

  // Request intake (reader / spool threads).
  void handle_request_line(Connection* conn, const std::string& line);
  void reject(Session& session, const std::string& request_id, const std::string& name,
              scenario::ResultStatus status, const std::string& error);

  // Scheduling + execution (worker threads).
  struct DroppedRequest {
    std::shared_ptr<Session> session;
    Request request;
  };
  void worker_loop();
  [[nodiscard]] bool pick_next_locked(std::shared_ptr<Session>& session, Request& request,
                                      std::vector<DroppedRequest>& dropped);
  void execute(const std::shared_ptr<Session>& session, Request request);
  void maybe_finish_locked(Session& session);
  void mark_input_closed(Session& session);

  // Crash recovery (journal mode).
  void reclaim_spool_dir();
  void requeue_incomplete();
  /// Reconciles @p request with its journal record + frame spool before a
  /// run: fills the replayable @p prefix, the sweep @p resume_from index and
  /// @p prefix_failed count; sets @p already_complete when the frame spool
  /// already ends with the done frame (the prefix then IS the whole answer).
  void prepare_recovery(Request& request, std::vector<std::string>& prefix,
                        std::size_t& resume_from, std::size_t& prefix_failed,
                        bool& already_complete);
  /// Delivers the settled outcome of @p request_id to its follower sessions
  /// (journal dedup) and releases their waiting gates.
  void settle_followers(const std::string& request_id,
                        std::vector<std::shared_ptr<Session>> followers);
  /// Journals + answers requests dropped without execution (dead connection,
  /// drain), releasing any followers of their ids.
  void cancel_dropped(std::vector<DroppedRequest>& dropped, const std::string& reason);
  void cache_reload_loop();

  // Shutdown sequence (wait()).
  void drain_queued_requests();

  Connection* add_connection(std::unique_ptr<Connection> conn);

  ServeOptions options_;
  std::optional<scenario::ResultCache> cache_;
  std::optional<Journal> journal_;
  sim::engine::CancelToken shutdown_;  ///< parent of every session token

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::atomic<int> stop_requested_{0};     ///< 0 running, 1 graceful, >1 hard
  std::atomic<bool> stopping_{false};      ///< transports + readers exit
  std::atomic<bool> workers_exit_{false};  ///< workers exit (after drain)

  std::thread accept_thread_;
  std::thread spool_thread_;
  std::thread reload_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex sched_mutex_;
  std::condition_variable sched_cv_;  ///< workers: work available / re-check
  std::condition_variable drain_cv_;  ///< wait(): in-flight count changed
  /// All connections ever opened; guarded by sched_mutex_ for mutation.
  /// Entries are never erased before shutdown, so raw Connection pointers
  /// handed to transport threads stay valid.
  std::vector<std::unique_ptr<Connection>> connections_;
  std::size_t in_flight_total_ = 0;  ///< guarded by sched_mutex_
  bool draining_ = false;            ///< guarded by sched_mutex_
  /// Journal dedup (guarded by sched_mutex_): ids currently queued or
  /// executing, and the sessions waiting to receive each id's outcome.
  std::unordered_set<std::string> active_;
  std::unordered_map<std::string, std::vector<std::shared_ptr<Session>>> followers_;
  std::atomic<std::uint64_t> next_session_id_{0};  ///< accept + spool threads

  bool started_ = false;
  bool stopped_ = false;
  std::mutex lifecycle_mutex_;  ///< serialises start()/wait()/stop()

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_faulted_{0};
  std::atomic<std::uint64_t> spool_files_{0};
  std::atomic<std::uint64_t> requests_accepted_{0};
  std::atomic<std::uint64_t> requests_rejected_{0};
  std::atomic<std::uint64_t> requests_completed_{0};
  std::atomic<std::uint64_t> requests_failed_{0};
  std::atomic<std::uint64_t> requests_cancelled_{0};
  std::atomic<std::uint64_t> frames_written_{0};
  std::atomic<std::uint64_t> spool_reclaimed_{0};
  std::atomic<std::uint64_t> journal_recovered_{0};
  std::atomic<std::uint64_t> journal_rejected_{0};
  std::atomic<std::uint64_t> requests_deduped_{0};
  std::atomic<std::uint64_t> sweeps_resumed_{0};
  std::atomic<std::uint64_t> cache_reloads_{0};
};

}  // namespace arsf::serve
