#pragma once
// Wire protocol of the scenario service daemon (src/serve/server.h).
//
// Requests ride the overlay wire format that already exists: one JSON object
// per line, either a Scenario or a SweepSpec (recognised by its "base" key,
// exactly like ScenarioRegistry::merge), extended with ONE extra field — a
// client-chosen, non-empty string "request_id" that keys every response
// frame back to the request.  The strict parser discipline carries over
// unchanged: unknown and duplicate keys are rejected, so a typo in a request
// can never silently fall back to a default.
//
// Responses are JSONL frames.  A result frame is scenario::to_json(index,
// result) with `"request_id":"<id>"` spliced in as the FIRST field — so
// stripping that one field (strip_request_id()) recovers the offline
// runner's output byte for byte, which is what tools/serve_smoke.cpp pins.
// `index` is the index within the request: the grid index for a sweep, 0
// for a single scenario.  After its last result frame every request gets
// exactly one done frame {"request_id":..,"done":true,"results":N,
// "failed":M}; a request that never reached the Runner (parse failure,
// shutdown, serve-layer fault) gets one synthesized error frame carrying a
// structured status plus its done frame.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "scenario/scenario.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"

namespace arsf::serve {

/// One parsed client request: a Scenario or a SweepSpec tagged with the
/// client-chosen request id.
struct Request {
  std::string request_id;
  bool is_sweep = false;
  scenario::Scenario scenario;  ///< valid when !is_sweep
  scenario::SweepSpec sweep;    ///< valid when is_sweep

  /// The workload's name (scenario name or sweep name), for error frames.
  [[nodiscard]] const std::string& name() const noexcept {
    return is_sweep ? sweep.name : scenario.name;
  }
};

/// Thrown by parse_request(); carries the request id when it could be
/// recovered from the malformed line, so the error frame still reaches the
/// right client-side waiter.
class RequestError : public std::invalid_argument {
 public:
  RequestError(std::string request_id, const std::string& what)
      : std::invalid_argument(what), request_id_(std::move(request_id)) {}

  [[nodiscard]] const std::string& request_id() const noexcept { return request_id_; }

 private:
  std::string request_id_;
};

/// Parses and validates one request line (see the file comment).  Throws
/// RequestError on a malformed line, a missing/empty/non-string request_id,
/// or a Scenario/SweepSpec that fails validation.
[[nodiscard]] Request parse_request(const std::string& line);

/// Scheduling weight of a request for the cost-weighted round-robin: the
/// scenario's estimated_worlds(), or the sweep's saturating total over its
/// grid (summed exactly for small grids, extrapolated from the base for
/// huge ones — a weight, not an admission decision).  Never returns 0.
[[nodiscard]] std::uint64_t request_cost(const Request& request) noexcept;

/// One result frame: scenario::to_json(index, result) with the request_id
/// spliced in as the first field.
[[nodiscard]] std::string result_frame(const std::string& request_id, std::size_t index,
                                       const scenario::ScenarioResult& result);

/// The terminal frame of a request (exactly one, after the last result).
[[nodiscard]] std::string done_frame(const std::string& request_id, std::size_t results,
                                     std::size_t failed);

/// Synthesized single-result frame for a request that never produced real
/// results: a self-contained error frame with the given status and message
/// under index 0.  @p scenario_name may be empty (parse failures).
[[nodiscard]] std::string error_frame(const std::string& request_id,
                                      const std::string& scenario_name,
                                      scenario::ResultStatus status, const std::string& error);

/// Inverse of the request_id splice: removes the leading request_id field
/// from any protocol frame, or std::nullopt when @p frame does not start
/// with one.  For a result frame the remainder is the embedded
/// scenario::to_json() text byte for byte; done frames strip too, but their
/// remainder is the done payload, not a result frame.
[[nodiscard]] std::optional<std::string> strip_request_id(const std::string& frame);

/// The request id of any frame emitted by this protocol (result, error or
/// done frames all lead with it), or std::nullopt for foreign text.
[[nodiscard]] std::optional<std::string> frame_request_id(const std::string& frame);

/// ResultSink adapter over the JSONL wire format: stamps each completed
/// result with the request id and hands the rendered line to @p emit (the
/// session's bounded output queue), then emits the done frame from
/// on_finish().  Counts results and failures on the way through.  @p emit
/// may throw to abort the producing run (e.g. the connection died); the
/// exception propagates to the Runner/run_sweep caller.
class RequestSink final : public scenario::ResultSink {
 public:
  using Emit = std::function<void(const std::string& line)>;

  RequestSink(std::string request_id, Emit emit)
      : request_id_(std::move(request_id)), emit_(std::move(emit)) {}

  void on_result(std::size_t index, const scenario::ScenarioResult& result) override {
    emit_(result_frame(request_id_, index, result));
    ++results_;
    if (!result.ok()) ++failed_;
  }
  void on_finish(std::size_t /*total*/) override {
    emit_(done_frame(request_id_, results_, failed_));
  }

  [[nodiscard]] std::size_t results() const noexcept { return results_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }

  /// Seeds the counters with frames already delivered from a recovered spool
  /// (sweep resume): the eventual done frame must count the WHOLE run, not
  /// just the tail re-evaluated after the restart.
  void resume_counts(std::size_t results, std::size_t failed) noexcept {
    results_ = results;
    failed_ = failed;
  }

 private:
  std::string request_id_;
  Emit emit_;
  std::size_t results_ = 0;
  std::size_t failed_ = 0;
};

}  // namespace arsf::serve
