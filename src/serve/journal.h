#pragma once
// Durable request journal of the scenario service daemon (serve/server.h):
// the write-ahead log that makes the daemon crash-safe.
//
// Every admitted request is appended to `<state_dir>/journal.jsonl` as a
// line-JSON event and walked through the state machine
//
//     accepted -> running -> done | failed | cancelled
//
// with each transition appended (and fsync'd) before the daemon acts on it.
// On startup open() replays the log, drops a torn or corrupt tail exactly
// like the ResultCache store does (rejected lines are COUNTED, never
// replayed, and never abort startup), and compacts the survivors
// write-then-rename so every restart begins from a clean minimal file.  The
// server then re-queues every non-terminal record under its original
// request_id and answers re-submissions of terminal ids from the frame
// spool below — exactly-once completion frames across any number of kills.
//
// Frame spool: alongside the journal, every response frame of a journaled
// request is appended to `<state_dir>/frames/<fnv64(request_id)>.jsonl` at
// emit time (write(2) per line: a SIGKILL can never lose an acknowledged
// frame; fsync happens at terminal events).  A request whose frame file
// ends with its done frame is COMPLETE regardless of what the journal or a
// leftover sweep checkpoint claims — replaying that file byte for byte IS
// the recovery, which is what keeps recovered answers identical to an
// uninterrupted run.  For sweeps, `<stem>.progress` next to the frame file
// holds the PR 5 fingerprinted checkpoint (scenario/sweep.h); the server
// truncates the frame file to the checkpointed index and resumes only the
// missing tail.
//
// Fault sites (scenario/faultplan.h): "journal" models a failed durable
// append — the event is skipped and counted (appends_failed()), in-memory
// state and the daemon carry on, durability degrades but correctness does
// not.  "crash" is the kill-and-recover harness's seeded kill point: after
// the keyed durable event (journal + frame appends share one 1-based
// ordinal) the process SIGKILLs ITSELF.  Never arm "crash" in-process.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace arsf::scenario {
class FaultInjector;  // scenario/faultplan.h
}

namespace arsf::serve {

enum class JournalState { kAccepted, kRunning, kDone, kFailed, kCancelled };

[[nodiscard]] std::string to_string(JournalState state);
/// Done / failed / cancelled: no further transition will be journaled.
/// (Recovery still re-runs a CANCELLED id on re-submission — cancellation is
/// a terminal fact about the previous attempt, not a reusable answer.)
[[nodiscard]] bool is_terminal(JournalState state) noexcept;

/// The live view of one journaled request (last-writer-wins over events).
struct JournalRecord {
  std::string request_id;
  JournalState state = JournalState::kAccepted;
  std::string origin;  ///< "socket" | "spool" — which transport admitted it
  std::string line;    ///< the raw request line, replayable via parse_request
  std::uint64_t results = 0;  ///< done-frame counts, valid at terminal states
  std::uint64_t failed = 0;
};

struct JournalLoadReport {
  std::size_t records = 0;   ///< live records after replay
  std::size_t rejected = 0;  ///< torn / corrupt / orphaned lines dropped
};

class Journal {
 public:
  explicit Journal(std::string state_dir);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Arms the "journal" / "crash" fault sites (nullptr = none).  Call before
  /// open(): compaction and recovery appends are durable events too.
  void set_fault_injector(const scenario::FaultInjector* injector) noexcept {
    injector_ = injector;
  }

  /// Creates the state directory tree, replays the journal (a torn or
  /// corrupt tail is dropped and counted, never fatal), compacts it
  /// write-then-rename, removes frame/checkpoint files that belong to no
  /// live record, and opens the append fd.  Throws std::runtime_error only
  /// when the directory or the compacted file cannot be created at all.
  JournalLoadReport open();

  /// Rewrites the journal as one accepted (+ one state) event per live
  /// record, write-then-rename, and reopens the append fd.
  void compact();

  // ---- events (each an fsync'd single-line append) -------------------------

  /// First event of a request id — or a re-accept of a known non-terminal id
  /// after a restart (the line/origin are refreshed; last writer wins).
  void record_accepted(const std::string& request_id, const std::string& origin,
                       const std::string& line);
  /// State transition; @p results / @p failed are recorded for terminal
  /// states (the done-frame counts).  Unknown ids get a synthetic record so
  /// an out-of-order event is never silently dropped.
  void record_state(const std::string& request_id, JournalState state,
                    std::uint64_t results = 0, std::uint64_t failed = 0);

  [[nodiscard]] std::optional<JournalRecord> find(const std::string& request_id) const;
  /// Non-terminal records in journal (first-seen) order — the restart
  /// re-queue list.
  [[nodiscard]] std::vector<JournalRecord> incomplete() const;
  [[nodiscard]] std::size_t size() const;
  /// Durable appends skipped or failed (the "journal" fault site plus real
  /// write errors).  Monotonic.
  [[nodiscard]] std::uint64_t appends_failed() const;

  // ---- frame spool ---------------------------------------------------------

  /// Filesystem-safe stem for a request id: 16 hex digits of FNV-1a(id).
  [[nodiscard]] static std::string frame_file_stem(const std::string& request_id);
  [[nodiscard]] std::string frame_path(const std::string& request_id) const;
  /// The sweep resume token location for a request (scenario/sweep.h
  /// save/load_sweep_checkpoint).
  [[nodiscard]] std::string checkpoint_path(const std::string& request_id) const;

  /// Appends one frame line (unbuffered write(2) — SIGKILL-durable).
  void append_frame(const std::string& request_id, const std::string& frame);
  /// fsync the frame file (terminal events; checkpoints imply durable frames
  /// only up to the write(2) guarantee, which is what the SIGKILL harness
  /// exercises).
  void sync_frames(const std::string& request_id);
  /// Closes the cached append fd (call at terminal events).
  void close_frames(const std::string& request_id);
  /// Every COMPLETE line of the frame file, in order.  Reading stops at the
  /// first torn (unterminated) or non-JSON line; a missing file is empty.
  [[nodiscard]] std::vector<std::string> read_frames(const std::string& request_id) const;
  /// Truncates the frame file to its first @p keep lines, write-then-rename
  /// (sweep resume: cut back to the checkpointed index).
  void truncate_frames(const std::string& request_id, std::size_t keep);
  /// Removes the frame file and checkpoint outright (fresh re-run).
  void reset_frames(const std::string& request_id);

 private:
  void append_event_locked(const std::string& line);
  void compact_locked();
  JournalRecord& upsert_locked(const std::string& request_id);
  /// Ticks the shared durable-event ordinal and honours the "crash" site.
  void durable_event_locked();
  int frame_fd_locked(const std::string& request_id);

  std::string dir_;
  std::string path_;
  std::string frames_dir_;
  const scenario::FaultInjector* injector_ = nullptr;

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::vector<JournalRecord> records_;  ///< journal (first-seen) order
  std::unordered_map<std::string, std::size_t> index_;  ///< id -> records_ slot
  std::unordered_map<std::string, int> frame_fds_;
  std::uint64_t append_ordinal_ = 0;   ///< "journal" site key (1-based)
  std::uint64_t durable_ordinal_ = 0;  ///< "crash" site key (1-based)
  std::uint64_t appends_failed_ = 0;
};

/// True when @p frame is a protocol done frame (the marker that a frame
/// spool holds a COMPLETE answer).
[[nodiscard]] bool frame_is_done(const std::string& frame);

}  // namespace arsf::serve
