#pragma once
// One client of the scenario service daemon: the per-connection state shared
// by the socket and spool transports (src/serve/server.h).
//
// A Session owns two queues.  The REQUEST side is a plain FIFO drained by
// the server's cost-weighted round-robin scheduler — it lives in the
// `sched` struct below and is guarded by the server's scheduler mutex, so
// eligibility of all sessions can be inspected atomically when a worker
// picks its next request.  The OUTPUT side is a bounded frame queue with
// its own mutex: the writer thread drains it to the transport, and a
// producer (the worker streaming a request's results) BLOCKS in
// push_frame() while it is full.  That block is the backpressure contract:
// a slow reader stalls only the worker serving that connection — the
// daemon executes every request with a serial engine fan-out, so the
// shared engine ThreadPool is never captured — and the scheduler refuses
// to start the connection's next request while the queue is full
// (output_has_room()), so a dead client cannot pile up unread frames.
//
// Cancellation: every session carries a CancelToken chained to the
// daemon-wide shutdown token.  The blocking waits poll the token (bounded
// wait_for slices) rather than relying on wake-ups alone, so a parent
// cancel or an armed drain deadline unblocks them even when nobody calls
// cancel() on this specific session.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "serve/protocol.h"
#include "sim/engine/cancel.h"

namespace arsf::serve {

/// Per-connection bounds; all enforced by the session/server machinery.
struct SessionLimits {
  /// Requests a connection may hold queued (FIFO) before new ones are
  /// rejected with a kRejected error frame.
  std::size_t max_queued_requests = 64;
  /// Bounded output queue: a producer blocks once this many frames are
  /// unread, and the scheduler skips the connection until the writer
  /// drains below the bound.
  std::size_t max_output_frames = 256;
  /// Longest accepted request line; a longer one poisons the connection
  /// (protocol error frame, then teardown).
  std::size_t max_line_bytes = 1 << 20;
};

class Session {
 public:
  Session(std::uint64_t id, const SessionLimits& limits,
          const sim::engine::CancelToken* server_cancel)
      : id_(id), limits_(limits), token_(server_cancel) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const SessionLimits& limits() const noexcept { return limits_; }
  /// The per-session cancel token (child of the daemon shutdown token);
  /// handed to the Runner as the external batch cancel of this session's
  /// requests.
  [[nodiscard]] const sim::engine::CancelToken* token() const noexcept { return &token_; }

  // ---- output queue --------------------------------------------------------

  /// Appends one response frame; blocks while the queue is full.  Returns
  /// false — frame dropped — once the session is cancelled or finished
  /// (the producer should abort its request).
  bool push_frame(const std::string& line);

  /// Writer side: pops the next frame, blocking until one exists.  Returns
  /// false when the stream is over: cancelled (abandon the transport) or
  /// finished AND fully drained (flush and close gracefully —
  /// finished_cleanly() distinguishes the two).
  bool pop_frame(std::string& line);

  /// No frame will ever be pushed again; pop_frame() drains what is left
  /// and then returns false.
  void finish_output();

  /// Trips the session token and wakes every blocked queue operation —
  /// client disconnect, respond fault, or daemon hard stop.
  void cancel() noexcept;

  [[nodiscard]] bool cancelled() const noexcept { return token_.cancelled(); }
  /// True once finish_output() ran without the session being cancelled:
  /// the writer may seal its transport (e.g. rename a spool .partial file).
  [[nodiscard]] bool finished_cleanly() const;

  /// Scheduling gate: false while the output queue is at its bound.
  [[nodiscard]] bool output_has_room() const;

  [[nodiscard]] std::size_t frames_pushed() const;

  // ---- fault-site ordinals (scenario/faultplan.h) --------------------------

  /// 1-based arrival ordinal of the next request line ("session" site key).
  std::uint64_t next_request_ordinal() noexcept { return ++request_ordinal_; }
  /// 1-based ordinal of the next delivered frame ("respond" site key).
  std::uint64_t next_frame_ordinal() noexcept { return ++frame_ordinal_; }

  // ---- scheduling state ----------------------------------------------------
  // Guarded by the SERVER's scheduler mutex, never by the session's own —
  // the scheduler must see all sessions' queues consistently when picking.
  struct Sched {
    std::deque<Request> pending;  ///< FIFO of parsed, not-yet-started requests
    bool input_closed = false;    ///< reader saw EOF: no more requests will arrive
    bool in_flight = false;       ///< a worker is executing this session's request
    bool finished = false;        ///< finish_output() has been issued
    /// Requests of this session registered as FOLLOWERS of an id already
    /// active elsewhere (journal dedup): their frames arrive when the active
    /// run settles, so the session must not finish while any are pending.
    std::size_t waiting = 0;
    /// Accumulated cost-weighted service (virtual time).  The scheduler
    /// picks the eligible session with the smallest vtime and charges it
    /// request_cost() on dispatch, so a connection that just ran an
    /// 85M-world sweep waits behind everyone's microsecond enumerations.
    std::uint64_t vtime = 0;
  };
  Sched sched;

 private:
  const std::uint64_t id_;
  const SessionLimits limits_;
  sim::engine::CancelToken token_;

  mutable std::mutex mutex_;
  std::condition_variable frame_cv_;  ///< writer waits: queue non-empty / over
  std::condition_variable space_cv_;  ///< producer waits: room / cancelled
  std::deque<std::string> queue_;
  bool finished_ = false;
  std::size_t frames_pushed_ = 0;

  std::atomic<std::uint64_t> request_ordinal_{0};
  std::atomic<std::uint64_t> frame_ordinal_{0};
};

}  // namespace arsf::serve
