#include "support/csv.h"

#include <cstdio>
#include <stdexcept>

#include "support/ascii.h"

namespace arsf::support {

CsvWriter::CsvWriter(const std::string& path, bool append)
    : file_(path, append ? std::ios::out | std::ios::app : std::ios::out), out_(&file_) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter(std::ostream& out) : out_(&out) {}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(cells[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::write_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double x : cells) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.12g", x);
    text.emplace_back(buffer);
  }
  write_row(text);
}

ReportWriter::ReportWriter(const std::string& path, bool append) : csv_(path, append) {
  if (!append) csv_.write_row({"scenario", "analysis", "metric", "value"});
}

ReportWriter::ReportWriter(std::ostream& out) : csv_(out) {
  csv_.write_row({"scenario", "analysis", "metric", "value"});
}

void ReportWriter::add(const std::string& scenario, const std::string& analysis,
                       const std::string& metric, double value) {
  add_text(scenario, analysis, metric, format_round_trip(value));
}

void ReportWriter::add_text(const std::string& scenario, const std::string& analysis,
                            const std::string& metric, const std::string& value) {
  csv_.write_row({scenario, analysis, metric, value});
  ++entries_;
}

void ReportWriter::flush() { csv_.flush(); }

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace arsf::support
