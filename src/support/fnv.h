#pragma once
// Shared 64-bit FNV-1a — the one fingerprint primitive of this repository.
//
// Three subsystems hash content for identity: sweep resume tokens
// (scenario/sweep.h `sweep_fingerprint`), deterministic fault-injection
// decisions (scenario/faultplan.cpp `decision_point`) and the
// content-addressed result cache (scenario/result_cache.h
// `canonical_signature`).
// They must agree on the algorithm — a resume token or a persisted cache
// written by one build has to verify under the next — so the mixing steps
// live here once instead of being re-typed per call site.
//
// The incremental Fnv1a mixer reproduces faultplan's historical byte
// sequence exactly: u64 values are folded little-endian byte by byte, and
// byte(0) doubles as a string/field separator ("ab"+1 must differ from
// "a"+<b...>).  Changing any of this invalidates every persisted
// fingerprint; don't.

#include <cstdint>
#include <string_view>

namespace arsf::support {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Incremental FNV-1a mixer over bytes, u64s and strings.
class Fnv1a {
 public:
  constexpr Fnv1a() = default;

  constexpr Fnv1a& byte(std::uint8_t value) {
    hash_ ^= value;
    hash_ *= kFnvPrime;
    return *this;
  }

  /// Little-endian byte fold: 8 byte() steps, least-significant first.
  constexpr Fnv1a& u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(value >> (8 * i)));
    return *this;
  }

  constexpr Fnv1a& text(std::string_view value) {
    for (const char ch : value) byte(static_cast<std::uint8_t>(ch));
    return *this;
  }

  /// NUL separator between variable-length fields.
  constexpr Fnv1a& separator() { return byte(0); }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffsetBasis;
};

/// One-shot hash of a string (the sweep-fingerprint / cache-key form).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text) {
  return Fnv1a{}.text(text).value();
}

}  // namespace arsf::support
