#pragma once
// ASCII renderer for interval diagrams.
//
// The paper's figures (Fig. 1-5) are interval diagrams: one labelled row per
// sensor interval plus a fusion-interval row below a dashed separator.  The
// bench binaries regenerate those figures in the terminal with this canvas.

#include <optional>
#include <string>
#include <vector>

namespace arsf::support {

/// One row of an interval diagram.
struct DiagramRow {
  std::string label;      ///< e.g. "s1 (w=5)" or "a1 [attacked]"
  double lo = 0.0;
  double hi = 0.0;
  bool attacked = false;  ///< attacked rows render with '~' (paper's sinusoid)
  bool empty = false;     ///< renders as "(empty)"
};

/// Renders labelled intervals on a shared horizontal axis.
class IntervalDiagram {
 public:
  /// @param columns  width of the drawing area (excluding labels).
  explicit IntervalDiagram(std::size_t columns = 64) : columns_(columns) {}

  void add(std::string label, double lo, double hi, bool attacked = false);
  void add_empty(std::string label);
  /// Inserts the dashed separator the paper draws between sensor intervals
  /// and fusion intervals.
  void add_separator();
  /// Marks a vertical reference line (e.g. the true value).
  void set_marker(double x, char glyph = '*');

  /// Renders all rows plus an axis line with min/max tick labels.
  [[nodiscard]] std::string render() const;

 private:
  struct Marker {
    double x;
    char glyph;
  };

  std::size_t columns_;
  std::vector<std::optional<DiagramRow>> rows_;  // nullopt == separator
  std::vector<Marker> markers_;
};

/// Convenience: renders a single line of 'label: [lo, hi] (width w)'.
[[nodiscard]] std::string describe_interval(const std::string& label, double lo, double hi);

/// Formats a double with fixed precision, trimming trailing zeros.
[[nodiscard]] std::string format_number(double x, int max_decimals = 4);

/// Formats a double with enough digits (%.17g) that parsing the text yields
/// the identical value — the serialization format shared by the scenario
/// JSON writer and the unified CSV report.
[[nodiscard]] std::string format_round_trip(double x);

/// Simple fixed-width table printer used by the table-reproduction benches.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace arsf::support
