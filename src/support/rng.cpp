#include "support/rng.h"

#include <cmath>

namespace arsf::support {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Lemire-style rejection sampling: unbiased for every span.
  const std::uint64_t limit = (~span + 1) % span;  // 2^64 mod span
  std::uint64_t draw = next();
  while (draw < limit) draw = next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * unit();
}

double Rng::gaussian() noexcept {
  // Polar method; expected 1.27 iterations.
  for (;;) {
    const double u = 2.0 * unit() - 1.0;
    const double v = 2.0 * unit() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::truncated_gaussian(double mean, double sigma, double bound) noexcept {
  if (bound <= 0.0) return mean;
  if (sigma <= 0.0) return mean;
  // Rejection sampling; for the sigma/bound ratios used by the sensor models
  // (bound >= sigma) acceptance probability is at least 68%.
  for (;;) {
    const double draw = sigma * gaussian();
    if (draw >= -bound && draw <= bound) return mean + draw;
  }
}

void Rng::shuffle(std::span<std::size_t> items) noexcept {
  for (std::size_t i = items.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(items[i - 1], items[j]);
  }
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  shuffle(order);
  return order;
}

}  // namespace arsf::support
