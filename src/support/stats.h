#pragma once
// Streaming statistics used by the experiment harnesses: Welford running
// moments, normal-approximation confidence intervals, and fixed-bin
// histograms for fusion-width distributions.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace arsf::support {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  /// Sample variance (divide by n-1); 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept { return 1.959964 * sem(); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact weighted average accumulator for exhaustive-enumeration experiments
/// (integer weights; mean is a ratio of exact sums as far as doubles allow).
class WeightedMean {
 public:
  void add(double value, double weight = 1.0) noexcept {
    sum_ += value * weight;
    weight_ += weight;
  }
  [[nodiscard]] double mean() const noexcept { return weight_ > 0.0 ? sum_ / weight_ : 0.0; }
  [[nodiscard]] double total_weight() const noexcept { return weight_; }

 private:
  double sum_ = 0.0;
  double weight_ = 0.0;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp into
/// the edge bins so mass is never dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Smallest x such that at least q of the mass lies at or below x
  /// (piecewise-constant-within-bin interpolation).
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Multi-line ASCII rendering (for example/bench output).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Exact mean of a span (Kahan-compensated).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Median (copies and partially sorts).
[[nodiscard]] double median_of(std::span<const double> xs);

}  // namespace arsf::support
