#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (Random schedules, Monte Carlo
// engines, sensor noise, fault injection) draw from arsf::support::Rng so that
// every experiment is reproducible from a single 64-bit seed.  The generator
// is xoshiro256++ (Blackman & Vigna), seeded through SplitMix64; both are
// implemented here so the library has no dependency on <random>'s unspecified
// distribution algorithms (libstdc++ and libc++ produce different streams).

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace arsf::support {

/// SplitMix64 step: used for seeding and for hashing small keys.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator with explicit, portable semantics.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xa5f152ac00c0ffeeULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
    // xoshiro must not start from the all-zero state; splitmix64 of any seed
    // cannot produce four zero words, but keep the guarantee explicit.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles accept Rng.
  [[nodiscard]] std::uint64_t operator()() noexcept { return next(); }
  [[nodiscard]] static constexpr std::uint64_t min() noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept;

  /// Uniform real in [0, 1).
  [[nodiscard]] double unit() noexcept {
    // 53 top bits -> exactly representable double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) noexcept { return unit() < p; }

  /// Standard normal via polar Box-Muller (no cached spare: deterministic
  /// stream position regardless of call pattern).
  [[nodiscard]] double gaussian() noexcept;

  /// Normal truncated to [mean - bound, mean + bound]; used for sensor noise
  /// whose interval guarantee must hold with probability 1.
  [[nodiscard]] double truncated_gaussian(double mean, double sigma, double bound) noexcept;

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::span<std::size_t> items) noexcept;

  /// Random permutation of {0, ..., n-1}.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for per-component streams).
  [[nodiscard]] Rng split() noexcept {
    return Rng{next() ^ 0x9e3779b97f4a7c15ULL};
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace arsf::support
