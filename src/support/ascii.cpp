#include "support/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace arsf::support {

void IntervalDiagram::add(std::string label, double lo, double hi, bool attacked) {
  rows_.push_back(DiagramRow{std::move(label), lo, hi, attacked, false});
}

void IntervalDiagram::add_empty(std::string label) {
  DiagramRow row;
  row.label = std::move(label);
  row.empty = true;
  rows_.push_back(std::move(row));
}

void IntervalDiagram::add_separator() { rows_.push_back(std::nullopt); }

void IntervalDiagram::set_marker(double x, char glyph) { markers_.push_back({x, glyph}); }

std::string IntervalDiagram::render() const {
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  for (const auto& row : rows_) {
    if (!row || row->empty) continue;
    if (!any) {
      lo = row->lo;
      hi = row->hi;
      any = true;
    } else {
      lo = std::min(lo, row->lo);
      hi = std::max(hi, row->hi);
    }
  }
  for (const auto& marker : markers_) {
    if (!any) {
      lo = hi = marker.x;
      any = true;
    } else {
      lo = std::min(lo, marker.x);
      hi = std::max(hi, marker.x);
    }
  }
  if (!any) return "(empty diagram)\n";
  if (hi - lo < 1e-12) {
    lo -= 1.0;
    hi += 1.0;
  }

  std::size_t label_width = 0;
  for (const auto& row : rows_) {
    if (row) label_width = std::max(label_width, row->label.size());
  }
  label_width += 2;

  const double span = hi - lo;
  auto column_of = [&](double x) {
    const double t = (x - lo) / span;
    auto col = static_cast<std::ptrdiff_t>(std::lround(t * static_cast<double>(columns_ - 1)));
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(col, 0, static_cast<std::ptrdiff_t>(columns_) - 1));
  };

  std::ostringstream out;
  for (const auto& row : rows_) {
    if (!row) {
      out << std::string(label_width, ' ') << std::string(columns_, '-') << '\n';
      continue;
    }
    std::string line(columns_, ' ');
    if (!row->empty) {
      const std::size_t a = column_of(row->lo);
      const std::size_t b = column_of(row->hi);
      const char body = row->attacked ? '~' : '=';
      for (std::size_t c = a; c <= b; ++c) line[c] = body;
      line[a] = '|';
      line[b] = '|';
    }
    for (const auto& marker : markers_) {
      const std::size_t c = column_of(marker.x);
      if (line[c] == ' ') line[c] = ':';
    }
    std::string label = row->label;
    label.resize(label_width, ' ');
    out << label << line;
    if (row->empty) {
      out << "(empty)";
    } else {
      out << "  [" << format_number(row->lo) << ", " << format_number(row->hi) << "]";
    }
    out << '\n';
  }

  // Axis with min/max labels and marker glyphs.
  std::string axis(columns_, '.');
  for (const auto& marker : markers_) axis[column_of(marker.x)] = marker.glyph;
  out << std::string(label_width, ' ') << axis << '\n';
  out << std::string(label_width, ' ') << format_number(lo);
  const std::string hi_text = format_number(hi);
  const std::size_t pad =
      columns_ > format_number(lo).size() + hi_text.size()
          ? columns_ - format_number(lo).size() - hi_text.size()
          : 1;
  out << std::string(pad, ' ') << hi_text << '\n';
  return out.str();
}

std::string describe_interval(const std::string& label, double lo, double hi) {
  std::ostringstream out;
  out << label << ": [" << format_number(lo) << ", " << format_number(hi) << "] (width "
      << format_number(hi - lo) << ")";
  return out.str();
}

std::string format_round_trip(double x) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", x);
  return buffer;
}

std::string format_number(double x, int max_decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", max_decimals, x);
  std::string text{buffer};
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  if (text == "-0") text = "0";
  return text;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](std::ostringstream& out, const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      cell.resize(widths[c], ' ');
      out << ' ' << cell << " |";
    }
    out << '\n';
  };
  std::ostringstream out;
  print_row(out, headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) out << std::string(widths[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) print_row(out, row);
  return out.str();
}

}  // namespace arsf::support
