#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace arsf::support {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(sample_variance()); }

double RunningStats::sem() const noexcept {
  return count_ >= 2 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0.0) {
  if (hi_ <= lo_) hi_ = lo_ + 1.0;
}

void Histogram::add(double x, double weight) noexcept {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor(t));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const noexcept { return bin_lo(i + 1); }

double Histogram::quantile(double q) const noexcept {
  if (total_ <= 0.0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_;
  double seen = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (seen + counts_[i] >= target) {
      const double frac = counts_[i] > 0.0 ? (target - seen) / counts_[i] : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    seen += counts_[i];
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak > 0.0 ? static_cast<std::size_t>(counts_[i] / peak * static_cast<double>(width)) : 0;
    out << '[';
    out.precision(3);
    out.width(8);
    out << bin_lo(i) << ',';
    out.width(8);
    out << bin_hi(i) << ") ";
    out << std::string(bar, '#') << '\n';
  }
  return out.str();
}

double mean_of(std::span<const double> xs) noexcept {
  double sum = 0.0;
  double comp = 0.0;  // Kahan compensation
  for (double x : xs) {
    const double y = x - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

double median_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid), copy.end());
  const double hi = copy[mid];
  if (copy.size() % 2 == 1) return hi;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (copy[mid - 1] + hi);
}

}  // namespace arsf::support
