#pragma once
// Minimal CSV writer for experiment outputs (benches can dump their series
// next to the pretty-printed tables so results are machine-readable).

#include <fstream>
#include <string>
#include <vector>

namespace arsf::support {

/// RFC-4180-style CSV writer (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  /// Opens @p path for writing (@p append continues an existing file in
  /// place — the resumable-sweep path); throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path, bool append = false);
  /// Writes to an already-open stream owned by the caller.
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);
  /// Convenience: formats doubles with enough digits to round-trip.
  void write_numeric_row(const std::vector<double>& cells);

  /// Pushes buffered rows to the underlying stream.
  void flush() { out_->flush(); }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  [[nodiscard]] static std::string escape(const std::string& field);

  std::ofstream file_;
  std::ostream* out_;
  std::size_t rows_ = 0;
};

/// Unified long-format report: every analysis emits the same four columns
///
///     scenario,analysis,metric,value
///
/// so reports from different analyses (and different runs) concatenate and
/// pivot cleanly.  The header row is written on construction.
class ReportWriter {
 public:
  /// @p append continues an existing report in place WITHOUT re-writing the
  /// header row (the resumable-sweep path: the original run already wrote
  /// it, and a duplicate header would break byte-identity with an
  /// uninterrupted run).
  explicit ReportWriter(const std::string& path, bool append = false);
  explicit ReportWriter(std::ostream& out);

  void add(const std::string& scenario, const std::string& analysis,
           const std::string& metric, double value);
  /// Non-numeric entries (e.g. an error string) use the same columns.
  void add_text(const std::string& scenario, const std::string& analysis,
                const std::string& metric, const std::string& value);

  /// Pushes buffered rows to the underlying stream (streaming consumers —
  /// scenario/sink.h CsvStreamSink — flush per result so a tailing reader
  /// or a killed process never loses completed rows).
  void flush();

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }

 private:
  CsvWriter csv_;
  std::size_t entries_ = 0;
};

}  // namespace arsf::support
