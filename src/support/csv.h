#pragma once
// Minimal CSV writer for experiment outputs (benches can dump their series
// next to the pretty-printed tables so results are machine-readable).

#include <fstream>
#include <string>
#include <vector>

namespace arsf::support {

/// RFC-4180-style CSV writer (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  /// Opens @p path for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  /// Writes to an already-open stream owned by the caller.
  explicit CsvWriter(std::ostream& out);

  void write_row(const std::vector<std::string>& cells);
  /// Convenience: formats doubles with enough digits to round-trip.
  void write_numeric_row(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  [[nodiscard]] static std::string escape(const std::string& field);

  std::ofstream file_;
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace arsf::support
