#pragma once
// Tiny command-line parser for the examples and bench binaries.
//
// Supports `--flag`, `--key value` and `--key=value`; unknown arguments are
// reported so typos do not silently fall back to defaults.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace arsf::support {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if --name was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of doubles, e.g. --widths 5,11,17.
  [[nodiscard]] std::vector<double> get_double_list(const std::string& name,
                                                    std::vector<double> fallback) const;

  /// Positional arguments (everything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Arguments that looked like options but were never queried do not exist;
  /// call after all get_* calls to reject typos. Returns the unknown names.
  [[nodiscard]] std::vector<std::string> unknown() const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace arsf::support
