#include "support/cli.h"

#include <cstdlib>
#include <sstream>

namespace arsf::support {

ArgParser::ArgParser(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` unless the next token is another option or missing.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[i + 1];
      ++i;
    } else {
      options_[arg] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return options_.count(name) > 0;
}

std::string ArgParser::get_string(const std::string& name, std::string fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? std::move(fallback) : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" || it->second == "yes") {
    return true;
  }
  return false;
}

std::vector<double> ArgParser::get_double_list(const std::string& name,
                                               std::vector<double> fallback) const {
  queried_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  std::vector<double> values;
  std::stringstream stream(it->second);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) values.push_back(std::strtod(token.c_str(), nullptr));
  }
  return values;
}

std::vector<std::string> ArgParser::unknown() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : options_) {
    (void)value;
    if (!queried_.count(name)) names.push_back(name);
  }
  return names;
}

}  // namespace arsf::support
