#pragma once
// Concrete sensor models for the LandShark case study (paper, Section IV-B).
//
// The paper's interval widths:
//   * GPS speed estimate     — 1 mph   (determined empirically);
//   * camera speed estimate  — 2 mph   (determined empirically);
//   * each wheel encoder     — 0.2 mph (derived from the manufacturer spec:
//     192 cycles per revolution, 0.5% measuring error, 0.05% sampling
//     jitter — see encoder_interval_width for the derivation).

#include <vector>

#include "sensors/sensor.h"

namespace arsf::sensors {

/// Parameters of a wheel-encoder speed estimate.
struct EncoderSpec {
  int cycles_per_rev = 192;       ///< manufacturer: pulses per wheel revolution
  double wheel_circumference_m = 1.0;
  double sample_window_s = 0.1;   ///< speed = counted pulses over this window
  double measuring_error = 0.005; ///< 0.5% of reading
  double sampling_jitter = 0.0005;///< 0.05% of reading (timing uncertainty)
  double nominal_speed_mph = 10.0;///< speed at which the width is budgeted
};

/// Total guaranteed interval width (mph) for an encoder: quantisation
/// resolution + 2 * (measuring error + jitter) at the nominal speed.
/// With the paper's parameters this evaluates to ~0.2 mph.
[[nodiscard]] double encoder_interval_width(const EncoderSpec& spec);

/// Fixed-point bus encoding step shared by the LandShark suite (mph); keeps
/// transmitted interval endpoints exactly representable in the attacker's
/// and controller's tick arithmetic.
inline constexpr double kLandSharkBusGrid = 0.01;

/// GPS speed sensor, width 1 mph by default (paper's empirical bound).
[[nodiscard]] AbstractSensor make_gps(double width_mph = 1.0,
                                      double bus_grid = kLandSharkBusGrid);

/// Camera (visual odometry) speed sensor, width 2 mph by default.
[[nodiscard]] AbstractSensor make_camera(double width_mph = 2.0,
                                         double bus_grid = kLandSharkBusGrid);

/// Wheel encoder speed sensor; quantised noise model.
[[nodiscard]] AbstractSensor make_encoder(const EncoderSpec& spec = {},
                                          const std::string& name = "encoder",
                                          double bus_grid = kLandSharkBusGrid);

/// The paper's four-sensor LandShark suite:
/// {gps (1 mph), camera (2 mph), encoder-left (0.2), encoder-right (0.2)}.
[[nodiscard]] std::vector<AbstractSensor> landshark_suite(
    double bus_grid = kLandSharkBusGrid);

/// SystemConfig for the suite with the paper's f = ceil(4/2) - 1 = 1.
[[nodiscard]] SystemConfig landshark_config();

}  // namespace arsf::sensors
