#pragma once
// Random (non-malicious) fault injection.
//
// The paper's conclusion announces this as the planned extension: "Since we
// assumed uncompromised sensors always provide correct measurements, an
// extension of this work will introduce random faults in addition to
// attacks."  This module implements that extension; the ablation bench and
// tests use it to study detection behaviour when faults and attacks coexist.

#include <optional>
#include <string>
#include <vector>

#include "sensors/sensor.h"
#include "support/rng.h"

namespace arsf::sensors {

enum class FaultKind {
  kNone,
  kStuckAt,   ///< reports a frozen stale value
  kOffset,    ///< constant bias larger than the guaranteed bound
  kDrift,     ///< bias growing linearly with time
  kDropout,   ///< reports an arbitrary (uniform) value in a wide range
};

[[nodiscard]] std::string to_string(FaultKind kind);

/// Per-sensor fault process: each round the sensor enters/leaves a fault
/// state with the configured probabilities (a two-state Markov chain).
struct FaultProcess {
  FaultKind kind = FaultKind::kNone;
  double p_enter = 0.0;      ///< P(healthy -> faulty) per round
  double p_recover = 0.0;    ///< P(faulty -> healthy) per round
  double magnitude = 0.0;    ///< offset size / drift rate / dropout range
};

/// Applies fault processes to a sensor suite's readings.
class FaultInjector {
 public:
  FaultInjector(std::vector<FaultProcess> processes, std::uint64_t seed);

  /// Transforms the healthy reading of sensor @p id at round @p round.
  /// Returns the (possibly faulty) reading; the interval is rebuilt around
  /// the faulty measurement with the sensor's advertised width, so a faulty
  /// sensor's interval may NOT contain the true value.
  [[nodiscard]] Reading apply(std::size_t id, const AbstractSensor& sensor, Reading healthy,
                              std::uint64_t round);

  /// Whether sensor @p id is currently in a fault state.
  [[nodiscard]] bool faulty(std::size_t id) const;

  /// Number of sensors currently faulty.
  [[nodiscard]] int num_faulty() const;

  void reset();

 private:
  struct State {
    bool active = false;
    double stuck_value = 0.0;
    std::uint64_t fault_started = 0;
  };

  std::vector<FaultProcess> processes_;
  std::vector<State> states_;
  support::Rng rng_;
};

}  // namespace arsf::sensors
