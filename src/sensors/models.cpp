#include "sensors/models.h"

#include <cmath>

namespace arsf::sensors {

double encoder_interval_width(const EncoderSpec& spec) {
  // Pulse counting over the sample window quantises speed in steps of
  // circumference / (cycles * window); converted from m/s to mph.
  constexpr double kMphPerMps = 2.236936;
  const double resolution_mps =
      spec.wheel_circumference_m /
      (static_cast<double>(spec.cycles_per_rev) * spec.sample_window_s);
  const double resolution_mph = resolution_mps * kMphPerMps;
  // Multiplicative error terms are budgeted at the nominal operating speed
  // (the paper quotes a single fixed width, so the budget is fixed too).
  const double proportional =
      2.0 * (spec.measuring_error + spec.sampling_jitter) * spec.nominal_speed_mph;
  // One quantisation step of total uncertainty plus the proportional terms;
  // with the defaults: 0.0521 m/s -> 0.1165 mph quantisation, 0.11 mph
  // proportional, rounded up to a guaranteed 0.2 mph by taking ceil to one
  // decimal as a manufacturer would.
  const double raw = resolution_mph * 0.75 + proportional;
  return std::ceil(raw * 10.0) / 10.0;
}

AbstractSensor make_gps(double width_mph, double bus_grid) {
  return AbstractSensor{SensorSpec{"gps", width_mph, false}, NoiseModel::kUniform,
                        1.0 / 3.0, 0.0, bus_grid};
}

AbstractSensor make_camera(double width_mph, double bus_grid) {
  return AbstractSensor{SensorSpec{"camera", width_mph, false}, NoiseModel::kTruncGaussian,
                        1.0 / 3.0, 0.0, bus_grid};
}

AbstractSensor make_encoder(const EncoderSpec& spec, const std::string& name, double bus_grid) {
  const double width = encoder_interval_width(spec);
  constexpr double kMphPerMps = 2.236936;
  const double resolution_mph =
      spec.wheel_circumference_m /
      (static_cast<double>(spec.cycles_per_rev) * spec.sample_window_s) * kMphPerMps;
  return AbstractSensor{SensorSpec{name, width, false}, NoiseModel::kQuantized,
                        1.0 / 3.0, resolution_mph, bus_grid};
}

std::vector<AbstractSensor> landshark_suite(double bus_grid) {
  std::vector<AbstractSensor> suite;
  suite.push_back(make_gps(1.0, bus_grid));
  suite.push_back(make_camera(2.0, bus_grid));
  suite.push_back(make_encoder({}, "encoder-left", bus_grid));
  suite.push_back(make_encoder({}, "encoder-right", bus_grid));
  return suite;
}

SystemConfig landshark_config() {
  SystemConfig config;
  for (const auto& sensor : landshark_suite()) config.sensors.push_back(sensor.spec());
  config.f = max_bounded_f(static_cast<int>(config.sensors.size()));  // = 1
  config.validate();
  return config;
}

}  // namespace arsf::sensors
