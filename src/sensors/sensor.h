#pragma once
// Abstract sensor models (paper, Section II-B).
//
// A sensor samples the true value of the physical variable with bounded
// error; the controller turns the numeric measurement m into the interval
// [m - w/2, m + w/2] where w is the sensor's fixed, a-priori known interval
// width.  As long as |measurement error| <= w/2 the interval contains the
// true value — the "correct sensor" guarantee everything else builds on.
//
// Noise models all respect the bound (the guarantee must hold with
// probability 1):
//   * kUniform         — error ~ U[-w/2, +w/2] (paper's simulations);
//   * kTruncGaussian   — truncated normal, sigma = w/6 by default;
//   * kQuantized       — uniform error then snapped to the sensor's
//                        quantisation resolution (wheel encoders).

#include <string>

#include "core/config.h"
#include "core/interval.h"
#include "support/rng.h"

namespace arsf::sensors {

enum class NoiseModel { kUniform, kTruncGaussian, kQuantized };

[[nodiscard]] std::string to_string(NoiseModel model);

/// One reading: the numeric measurement plus the derived interval.
struct Reading {
  double measurement = 0.0;
  Interval interval;  ///< [measurement - w/2, measurement + w/2]
};

/// Samples bounded-noise measurements and builds guaranteed intervals.
class AbstractSensor {
 public:
  /// @param spec        width/name/trust as used system-wide.
  /// @param model       noise model (see enum).
  /// @param sigma_frac  for kTruncGaussian: sigma as a fraction of the
  ///                    half-width (default 1/3 -> ~3-sigma bound).
  /// @param resolution  for kQuantized: measurement grid size.
  /// @param bus_grid    fixed-point encoding step of the bus payload
  ///                    (0 = none).  Measurements are snapped to this grid
  ///                    and clamped back into [true - w/2, true + w/2], so
  ///                    the interval guarantee survives the encoding and the
  ///                    transmitted endpoints are exactly representable in
  ///                    attacker/controller tick arithmetic.
  explicit AbstractSensor(SensorSpec spec, NoiseModel model = NoiseModel::kUniform,
                          double sigma_frac = 1.0 / 3.0, double resolution = 0.0,
                          double bus_grid = 0.0);

  /// Draws a measurement of @p true_value; the returned interval is
  /// guaranteed to contain @p true_value.
  [[nodiscard]] Reading sample(double true_value, support::Rng& rng) const;

  /// Interval for an externally supplied measurement (used when replaying a
  /// spoofed measurement through the same construction the controller uses).
  [[nodiscard]] Interval interval_for(double measurement) const;

  [[nodiscard]] const SensorSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double width() const noexcept { return spec_.width; }
  [[nodiscard]] double half_width() const noexcept { return 0.5 * spec_.width; }
  [[nodiscard]] NoiseModel model() const noexcept { return model_; }

 private:
  [[nodiscard]] double encode_for_bus(double measurement, double true_value) const;

  SensorSpec spec_;
  NoiseModel model_;
  double sigma_frac_;
  double resolution_;
  double bus_grid_;
};

}  // namespace arsf::sensors
