#include "sensors/fault.h"

namespace arsf::sensors {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kStuckAt: return "stuck-at";
    case FaultKind::kOffset: return "offset";
    case FaultKind::kDrift: return "drift";
    case FaultKind::kDropout: return "dropout";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<FaultProcess> processes, std::uint64_t seed)
    : processes_(std::move(processes)), states_(processes_.size()), rng_(seed) {}

Reading FaultInjector::apply(std::size_t id, const AbstractSensor& sensor, Reading healthy,
                             std::uint64_t round) {
  if (id >= processes_.size()) return healthy;
  const FaultProcess& process = processes_[id];
  State& state = states_[id];
  if (process.kind == FaultKind::kNone) return healthy;

  // Two-state Markov transition.
  if (!state.active) {
    if (rng_.chance(process.p_enter)) {
      state.active = true;
      state.stuck_value = healthy.measurement;
      state.fault_started = round;
    }
  } else if (rng_.chance(process.p_recover)) {
    state.active = false;
  }
  if (!state.active) return healthy;

  double faulty_measurement = healthy.measurement;
  switch (process.kind) {
    case FaultKind::kStuckAt:
      faulty_measurement = state.stuck_value;
      break;
    case FaultKind::kOffset:
      faulty_measurement = healthy.measurement + process.magnitude;
      break;
    case FaultKind::kDrift:
      faulty_measurement = healthy.measurement +
                           process.magnitude * static_cast<double>(round - state.fault_started);
      break;
    case FaultKind::kDropout:
      faulty_measurement =
          healthy.measurement + rng_.uniform_real(-process.magnitude, process.magnitude);
      break;
    case FaultKind::kNone:
      break;
  }

  Reading faulty;
  faulty.measurement = faulty_measurement;
  faulty.interval = sensor.interval_for(faulty_measurement);
  return faulty;
}

bool FaultInjector::faulty(std::size_t id) const {
  return id < states_.size() && states_[id].active;
}

int FaultInjector::num_faulty() const {
  int count = 0;
  for (const auto& state : states_) count += state.active ? 1 : 0;
  return count;
}

void FaultInjector::reset() {
  for (auto& state : states_) state = State{};
}

}  // namespace arsf::sensors
