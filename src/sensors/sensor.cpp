#include "sensors/sensor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arsf::sensors {

std::string to_string(NoiseModel model) {
  switch (model) {
    case NoiseModel::kUniform: return "uniform";
    case NoiseModel::kTruncGaussian: return "truncated-gaussian";
    case NoiseModel::kQuantized: return "quantized";
  }
  return "unknown";
}

AbstractSensor::AbstractSensor(SensorSpec spec, NoiseModel model, double sigma_frac,
                               double resolution, double bus_grid)
    : spec_(std::move(spec)),
      model_(model),
      sigma_frac_(sigma_frac),
      resolution_(resolution),
      bus_grid_(bus_grid) {
  if (!spec_.valid()) throw std::invalid_argument("AbstractSensor: width must be > 0");
  if (model_ == NoiseModel::kQuantized && resolution_ <= 0.0) {
    throw std::invalid_argument("AbstractSensor: quantized model needs resolution > 0");
  }
}

double AbstractSensor::encode_for_bus(double measurement, double true_value) const {
  if (bus_grid_ <= 0.0) return measurement;
  const double bound = half_width();
  const double snapped = std::round(measurement / bus_grid_) * bus_grid_;
  // Snapping moves the value by at most grid/2; clamp back into the
  // guaranteed band — onto *grid points* inside the band, so the encoded
  // value is exact fixed-point and the interval still contains true_value.
  const double lo_grid = std::ceil((true_value - bound) / bus_grid_) * bus_grid_;
  const double hi_grid = std::floor((true_value + bound) / bus_grid_) * bus_grid_;
  return std::clamp(snapped, lo_grid, hi_grid);
}

Reading AbstractSensor::sample(double true_value, support::Rng& rng) const {
  const double bound = half_width();
  double measurement = true_value;
  switch (model_) {
    case NoiseModel::kUniform:
      measurement = true_value + rng.uniform_real(-bound, bound);
      break;
    case NoiseModel::kTruncGaussian:
      measurement = true_value + rng.truncated_gaussian(0.0, sigma_frac_ * bound, bound);
      break;
    case NoiseModel::kQuantized: {
      // Continuous error, then snap the *measurement* to the resolution grid;
      // the snap itself may push the error past the bound, so clamp.
      const double raw = true_value + rng.uniform_real(-bound, bound);
      double snapped = std::round(raw / resolution_) * resolution_;
      measurement = std::clamp(snapped, true_value - bound, true_value + bound);
      break;
    }
  }
  measurement = encode_for_bus(measurement, true_value);
  Reading reading;
  reading.measurement = measurement;
  reading.interval = interval_for(measurement);
  return reading;
}

Interval AbstractSensor::interval_for(double measurement) const {
  const double bound = half_width();
  return Interval{measurement - bound, measurement + bound};
}

}  // namespace arsf::sensors
