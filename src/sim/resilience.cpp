#include "sim/resilience.h"

#include <algorithm>

#include "sim/protocol.h"

namespace arsf::sim {

namespace {

/// Tick-domain fault state machine mirroring sensors::FaultProcess (the
/// double-domain injector lives in sensors/fault.h; the experiment engines
/// work on the exact grid).
struct TickFaultState {
  bool active = false;
  TickInterval stuck;
  std::uint64_t since = 0;
};

TickInterval apply_fault(const sensors::FaultProcess& process, TickFaultState& state,
                         const TickInterval& healthy, std::uint64_t round,
                         support::Rng& rng) {
  if (process.kind == sensors::FaultKind::kNone) return healthy;
  if (!state.active) {
    if (rng.chance(process.p_enter)) {
      state.active = true;
      state.stuck = healthy;
      state.since = round;
    }
  } else if (rng.chance(process.p_recover)) {
    state.active = false;
  }
  if (!state.active) return healthy;

  const auto magnitude = static_cast<Tick>(process.magnitude);
  switch (process.kind) {
    case sensors::FaultKind::kStuckAt:
      return state.stuck;
    case sensors::FaultKind::kOffset:
      return healthy.translated(magnitude);
    case sensors::FaultKind::kDrift:
      return healthy.translated(magnitude * static_cast<Tick>(round - state.since));
    case sensors::FaultKind::kDropout:
      return healthy.translated(rng.uniform_int(-magnitude, magnitude));
    case sensors::FaultKind::kNone:
      break;
  }
  return healthy;
}

}  // namespace

ResilienceResult run_resilience(const ResilienceConfig& config) {
  config.system.validate();
  const std::size_t n = config.system.n();
  const std::vector<Tick> widths = tick_widths(config.system, config.quant);

  support::Rng rng{config.seed};
  support::Rng world_rng = rng.split();
  support::Rng fault_rng = rng.split();
  support::Rng policy_rng = rng.split();

  sched::ScheduleGenerator generator =
      sched::ScheduleGenerator::of_kind(config.schedule, config.system, rng.next());
  const sched::Order representative = config.schedule == sched::ScheduleKind::kRandom
                                          ? sched::ascending_order(config.system)
                                          : generator.next();
  const std::vector<SensorId> attacked =
      config.fa > 0 ? sched::choose_attacked_set(config.system, representative, config.fa,
                                                 sched::AttackedSetRule::kSmallestWidths)
                    : std::vector<SensorId>{};
  auto is_attacked = [&](SensorId id) {
    return std::binary_search(attacked.begin(), attacked.end(), id);
  };

  if (config.policy != nullptr) config.policy->reset();

  std::vector<TickFaultState> fault_states(n);
  std::vector<TickInterval> readings(n);   // what the attacker reads / honest values
  std::vector<TickInterval> on_bus(n);     // after fault corruption
  ResilienceResult result;
  result.rounds = config.rounds;

  for (std::uint64_t round = 0; round < config.rounds; ++round) {
    if (config.cancel != nullptr) config.cancel->check();
    const sched::Order& order = generator.next();
    const attack::AttackSetup setup =
        attack::make_setup(config.system, config.quant, attacked, order);

    int active_faults = 0;
    for (SensorId id = 0; id < n; ++id) {
      const Tick lo = world_rng.uniform_int(-widths[id], 0);
      readings[id] = TickInterval{lo, lo + widths[id]};
      if (is_attacked(id)) {
        on_bus[id] = readings[id];  // the policy decides inside the round
        continue;
      }
      on_bus[id] = apply_fault(config.fault, fault_states[id], readings[id], round, fault_rng);
      if (fault_states[id].active) ++active_faults;
    }
    if (active_faults > 0) ++result.faulty_present;
    if (active_faults + static_cast<int>(attacked.size()) > config.system.f) {
      ++result.over_budget;
    }

    // The attacker observes the *transmitted* (possibly faulty) intervals but
    // her own sensors still read the truth.
    std::vector<TickInterval> round_inputs = on_bus;
    for (SensorId id : attacked) round_inputs[id] = readings[id];
    const TickRoundResult tick_round = run_tick_round(
        setup, round_inputs, config.fa > 0 ? config.policy : nullptr, policy_rng);

    if (tick_round.fused.is_empty()) {
      ++result.empty_fusion;
      result.width.add(0.0);
      continue;
    }
    result.width.add(static_cast<double>(tick_round.fused.width()) * config.quant.step);
    if (tick_round.fused.contains(Tick{0})) ++result.truth_contained;
    if (tick_round.attacked_detected) ++result.attacked_flagged;

    bool any_faulty_flagged = false;
    bool any_healthy_flagged = false;
    for (SensorId id = 0; id < n; ++id) {
      if (is_attacked(id)) continue;
      if (tick_round.transmitted[id].intersects(tick_round.fused)) continue;
      if (fault_states[id].active) {
        any_faulty_flagged = true;
      } else {
        any_healthy_flagged = true;
      }
    }
    if (any_faulty_flagged) ++result.faulty_flagged;
    if (any_healthy_flagged) ++result.healthy_flagged;
  }
  return result;
}

}  // namespace arsf::sim
