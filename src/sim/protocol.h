#pragma once
// Fusion-round drivers.
//
// run_tick_round executes one complete round of the paper's protocol on the
// integer tick grid: sensors transmit in slot order, the attacker's policy
// decides at each compromised slot from exactly the knowledge the broadcast
// bus gives her, then the controller fuses all n intervals and runs
// detection.  This is the engine under both the exhaustive-enumeration and
// Monte Carlo experiments.
//
// FusionRound is the continuous-domain wrapper used by the vehicle case
// study and the examples: it quantises sensor readings for the attacker,
// delegates to run_tick_round, and replays the resulting frames over the
// CAN-like SharedBus so the full substrate (arbitration, snooping, logging)
// is exercised.

#include <optional>

#include "attack/expectation.h"
#include "bus/bus.h"
#include "core/detection.h"
#include "core/estimate.h"

namespace arsf::sim {

struct TickRoundResult {
  /// Interval each sensor actually transmitted, indexed by SensorId.
  std::vector<TickInterval> transmitted;
  /// Fusion of the transmitted intervals (empty interval if no point reaches
  /// the n-f threshold).
  TickInterval fused;
  /// True iff detection flagged at least one *attacked* sensor.
  bool attacked_detected = false;
  /// True iff detection flagged at least one *correct* sensor (possible only
  /// when faults are injected upstream).
  bool correct_flagged = false;
};

/// Runs one protocol round on the tick grid.
///
/// @param setup            round setup (n, f, widths, attacked, order).
/// @param readings_by_id   each sensor's *correct* reading (interval of its
///                         spec width containing the true value); attacked
///                         sensors' readings are what the attacker observes.
/// @param policy           attacker policy; nullptr transmits readings as-is.
/// @param rng              randomness source handed to the policy.
/// @param oracle           fill AttackContext::unseen_actual (OraclePolicy).
[[nodiscard]] TickRoundResult run_tick_round(const attack::AttackSetup& setup,
                                             std::span<const TickInterval> readings_by_id,
                                             attack::AttackPolicy* policy, support::Rng& rng,
                                             bool oracle = false);

/// Continuous-domain round result.
struct RoundResult {
  std::vector<Interval> transmitted;  ///< by SensorId
  FusionResult fusion;
  DetectionReport detection;
  std::optional<double> estimate;  ///< fused midpoint (nullopt if region empty)
  bool attacked_detected = false;
};

/// Bus-backed continuous-domain protocol driver (see file comment).
class FusionRound {
 public:
  /// @param system    sensor widths and f (validated).
  /// @param quant     attacker grid; every width must be a multiple of step.
  /// @param attacked  compromised sensor ids.
  /// @param policy    attacker policy (nullptr -> everyone correct).
  FusionRound(SystemConfig system, Quantizer quant, std::vector<SensorId> attacked,
              attack::AttackPolicy* policy, bool oracle = false);

  /// Runs one round.  @p correct_intervals are the per-sensor correct
  /// readings by id (each of the sensor's spec width).
  [[nodiscard]] RoundResult run(const sched::Order& order,
                                std::span<const Interval> correct_intervals,
                                support::Rng& rng, std::uint64_t round_index = 0);

  [[nodiscard]] const bus::SharedBus& bus() const noexcept { return bus_; }
  [[nodiscard]] bus::SharedBus& bus() noexcept { return bus_; }
  [[nodiscard]] const SystemConfig& system() const noexcept { return system_; }
  [[nodiscard]] const std::vector<SensorId>& attacked() const noexcept { return attacked_; }

 private:
  SystemConfig system_;
  Quantizer quant_;
  std::vector<SensorId> attacked_;
  attack::AttackPolicy* policy_;
  bool oracle_;
  bus::SharedBus bus_;
};

}  // namespace arsf::sim
