#pragma once
// Schedule-comparison experiment harness (paper, Section IV-A / Table I).
//
// A row fixes the interval widths L and the number of attacked sensors fa
// (with f = ceil(n/2) - 1, the paper's choice), compromises the fa most
// precise sensors (Theorem 4's strongest choice; ties resolved in the
// attacker's favour), and computes the exact expected fusion width under the
// Ascending and the Descending schedule by exhaustive enumeration with the
// Bayesian attacker of attack/expectation.h.
//
// Layering note: this harness is a thin facade over the scenario layer —
// compare_schedules builds declarative Scenarios and runs them through
// scenario::make_enumerate_setup, the same builder the registry-driven
// Runner uses, so both paths are bit-identical by construction.  It stays in
// sim/ for source compatibility, but conceptually it sits next to
// scenario/, above the sim engines.

#include <span>
#include <utility>

#include "attack/expectation.h"
#include "sim/enumerate.h"

namespace arsf::sim {

struct Table1Row {
  std::vector<double> widths;  ///< interval lengths L
  std::size_t fa = 1;          ///< number of attacked sensors
  double e_ascending = 0.0;    ///< E|S| under the Ascending schedule
  double e_descending = 0.0;   ///< E|S| under the Descending schedule
  double e_no_attack = 0.0;    ///< E|S| with everyone correct (baseline)
  std::uint64_t worlds = 0;    ///< enumerated worlds per schedule
  std::uint64_t detected = 0;  ///< detection events across both runs (expect 0)
};

/// Computes one row.  @p step is the discretisation grid (1 = paper's
/// integer widths).  Policy options allow bounding cost on fine grids.
/// @p num_threads is the engine fan-out for the enumeration (0 = hardware
/// threads, 1 = serial); the result is bit-identical for every value.
[[nodiscard]] Table1Row compare_schedules(std::span<const double> widths, std::size_t fa,
                                          const attack::ExpectationOptions& policy_options = {},
                                          double step = 1.0, unsigned num_threads = 0);

/// The paper's eight Table I configurations (widths, fa).
[[nodiscard]] std::span<const std::pair<std::vector<double>, std::size_t>>
paper_table1_configs();

/// Paper-reported expectations for the same rows {ascending, descending}.
struct Table1Reference {
  double ascending;
  double descending;
};
[[nodiscard]] std::span<const Table1Reference> paper_table1_reference();

/// Runs all eight configurations.
[[nodiscard]] std::vector<Table1Row> reproduce_table1(
    const attack::ExpectationOptions& policy_options = {}, unsigned num_threads = 0);

}  // namespace arsf::sim
