#pragma once
// Exhaustive worst-case configuration search (paper, Section III-B).
//
// Searches the tick grid for the configuration maximising the fusion-interval
// width.  Correct intervals must contain the true value (pinned at 0);
// attacked intervals may sit anywhere but — when require_undetected is set —
// must intersect the resulting fusion interval (otherwise detection discards
// them, contradicting the attacker's stealth goal).
//
// This is the empirical machinery behind Theorems 3 and 4:
//   * Thm 3: worst case with the fa *largest* intervals attacked equals the
//     no-attack worst case |Sna|;
//   * Thm 4: the global worst case |Swc_fa| over every attacked set is
//     achieved by attacking the fa *smallest* intervals.

#include <span>
#include <vector>

#include "core/config.h"
#include "core/fusion.h"
#include "sim/engine/subset_search.h"

namespace arsf::sim {

struct WorstCaseConfig {
  std::vector<Tick> widths;        ///< by SensorId
  int f = 0;
  std::vector<SensorId> attacked;  ///< fixed attacked set F (may be empty)
  bool require_undetected = true;  ///< attacked intervals must intersect S
  /// Worker fan-out over configuration-index blocks (0 = one block per
  /// hardware thread, 1 = serial).  The merged result is bit-identical for
  /// every value: blocks merge in index order and ties keep the earlier
  /// block, so argmax is always the lowest-index maximising configuration.
  unsigned num_threads = 0;
  /// Optional cooperative cancellation (engine::CancelToken, nullptr = not
  /// cancellable): polled at block granularity, aborts via CancelledError,
  /// never alters a completing search's result.
  const engine::CancelToken* cancel = nullptr;
};

struct WorstCaseResult {
  Tick max_width = -1;                 ///< -1 if every configuration fused empty
  std::vector<TickInterval> argmax;    ///< a configuration achieving it
  std::uint64_t configurations = 0;    ///< search-space size
};

/// Exhaustive maximum of |S_{N,f}| over all grid configurations for a fixed
/// attacked set.
[[nodiscard]] WorstCaseResult worst_case_fusion(const WorstCaseConfig& config);

/// Run-batched fast lane over the same search space
/// (sim/engine/attacked_lane.h): the widest slot's digit runs collapse to
/// closed-form piece scans instead of per-world fusion sweeps.  Bit-identical
/// to worst_case_fusion for every input and thread count — max_width, the
/// argmax configuration (lowest world index on ties) and the configuration
/// count all match exactly; worst_case_fusion stays the golden oracle the
/// differential parity suite (tests/test_worstcase_fast.cpp) checks against.
[[nodiscard]] WorstCaseResult worst_case_fusion_fast(const WorstCaseConfig& config);

/// No-attack worst case |Sna| (every interval correct).
[[nodiscard]] Tick worst_case_no_attack(std::span<const Tick> widths, int f);

/// Global worst case |Swc_fa| over every attacked set of size fa; if
/// @p best_set is non-null it receives one maximising set.
///
/// The outer subset loop is embarrassingly parallel: @p num_threads fans the
/// fa-subsets out across workers (0 = hardware threads, 1 = serial) with the
/// per-set engine running serially.  Results — including which maximising
/// set best_set reports (the lowest subset bitmask) — are bit-identical for
/// every thread count.  @p require_undetected applies to every per-set
/// search (see WorstCaseConfig).  All over-sets entry points (this one, the
/// _fast and _bnb lanes) throw std::invalid_argument when fa > n (no
/// fa-subset exists, and a silent -1 is indistinguishable from "every
/// configuration fused empty") and when n > 63 (subset bitmasks are uint64).
[[nodiscard]] Tick worst_case_over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                                        std::vector<SensorId>* best_set = nullptr,
                                        unsigned num_threads = 0,
                                        bool require_undetected = true,
                                        const engine::CancelToken* cancel = nullptr);

/// worst_case_over_sets with every per-set search on the run-batched fast
/// lane; same subset fan-out, same mask-order merge, bit-identical results
/// (including the reported best_set) for every thread count.
[[nodiscard]] Tick worst_case_over_sets_fast(std::span<const Tick> widths, int f,
                                             std::size_t fa,
                                             std::vector<SensorId>* best_set = nullptr,
                                             unsigned num_threads = 0,
                                             bool require_undetected = true,
                                             const engine::CancelToken* cancel = nullptr);

/// worst_case_over_sets on the branch-and-bound subset engine
/// (sim/engine/subset_search.h): equal-width subsets collapse to one
/// representative per attacked-width multiset, and classes whose admissible
/// optimistic bound cannot beat the shared incumbent are pruned without
/// running their per-set search (which itself rides the run-batched fast
/// lane).  Bit-identical to worst_case_over_sets for every input and thread
/// count — the max width AND the reported best_set (lowest subset bitmask
/// among maximisers) — while visiting a fraction of the C(n, fa) lattice;
/// the flat loop stays the golden oracle the differential parity suite
/// (tests/test_subset_search.cpp) checks against.  @p stats, when non-null,
/// receives the dedup/prune counters.
[[nodiscard]] Tick worst_case_over_sets_bnb(std::span<const Tick> widths, int f,
                                            std::size_t fa,
                                            std::vector<SensorId>* best_set = nullptr,
                                            unsigned num_threads = 0,
                                            bool require_undetected = true,
                                            engine::SubsetSearchStats* stats = nullptr,
                                            const engine::CancelToken* cancel = nullptr);

}  // namespace arsf::sim
