#pragma once
// Monte Carlo expectation engine.
//
// Samples worlds instead of enumerating them — for configurations whose
// world count is too large for sim/enumerate.h (many sensors, fine grids)
// and for per-round Random schedules, which exhaustive enumeration does not
// cover.  Sampling is seeded and fully reproducible.

#include "schedule/schedule.h"
#include "sim/engine/cancel.h"
#include "sim/protocol.h"
#include "support/stats.h"

namespace arsf::sim {

struct MonteCarloConfig {
  SystemConfig system;
  Quantizer quant{1.0};
  sched::ScheduleKind schedule = sched::ScheduleKind::kAscending;
  /// Used instead of `schedule` when non-empty (kFixed semantics).
  sched::Order fixed_order;
  sched::AttackedSetRule attacked_rule = sched::AttackedSetRule::kSmallestWidths;
  std::size_t fa = 1;
  attack::AttackPolicy* policy = nullptr;
  bool oracle = false;
  std::size_t rounds = 10'000;
  std::uint64_t seed = 0x5eedf00dULL;
  /// Optional cooperative cancellation (nullptr = not cancellable): polled
  /// once per sampled round, aborts via engine::CancelledError.
  const engine::CancelToken* cancel = nullptr;
};

struct MonteCarloResult {
  support::RunningStats width;            ///< fused width under attack (value units)
  support::RunningStats width_no_attack;  ///< same worlds, everyone correct
  std::uint64_t detected_rounds = 0;
  std::uint64_t empty_fusion_rounds = 0;
  std::vector<SensorId> attacked;         ///< the compromised set used
};

/// Runs @p config.rounds sampled worlds.  For kRandom the slot order is
/// redrawn every round; the attacked set is chosen once up front from the
/// rule (the attacker cannot re-compromise sensors per round).
[[nodiscard]] MonteCarloResult run_monte_carlo(const MonteCarloConfig& config);

}  // namespace arsf::sim
