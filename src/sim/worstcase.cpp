#include "sim/worstcase.h"

#include <algorithm>

#include "sim/engine/engine.h"

namespace arsf::sim {

namespace {

struct Ranges {
  std::vector<TickInterval> lo_range;  ///< allowed lower bounds per sensor
};

Ranges placement_ranges(const WorstCaseConfig& config) {
  // Correct interval i contains 0: lo in [-w_i, 0].  Attacked intervals can
  // only influence the fusion interval if they intersect the span correct
  // intervals can reach, which is [-W, W] with W = max width; allow the full
  // touching range.
  Tick max_width = 0;
  for (Tick w : config.widths) max_width = std::max(max_width, w);

  Ranges ranges;
  ranges.lo_range.reserve(config.widths.size());
  for (SensorId id = 0; id < config.widths.size(); ++id) {
    const bool attacked = std::binary_search(config.attacked.begin(), config.attacked.end(), id);
    const Tick w = config.widths[id];
    if (attacked) {
      ranges.lo_range.push_back(TickInterval{-max_width - w, max_width});
    } else {
      ranges.lo_range.push_back(TickInterval{-w, 0});
    }
  }
  return ranges;
}

/// Per-block argmax tracker.  Keeps the *first* configuration (lowest world
/// index within the block) that strictly exceeds the running maximum, so
/// merging blocks in index order reproduces the serial scan exactly.
struct WorstCaseTracker {
  const WorstCaseConfig* config = nullptr;
  Tick max_width = -1;
  std::vector<TickInterval> argmax;

  void operator()(std::uint64_t /*index*/, TickInterval fused,
                  const engine::IncrementalSweep& sweep) {
    if (fused.is_empty() || fused.width() <= max_width) return;
    if (config->require_undetected) {
      for (SensorId id : config->attacked) {
        if (!sweep.intervals()[id].intersects(fused)) return;
      }
    }
    max_width = fused.width();
    argmax.assign(sweep.intervals().begin(), sweep.intervals().end());
  }
};

}  // namespace

WorstCaseResult worst_case_fusion(const WorstCaseConfig& config) {
  const std::size_t n = config.widths.size();
  WorstCaseResult result;
  if (n == 0) return result;

  const Ranges ranges = placement_ranges(config);
  const engine::WorldDomain domain =
      engine::WorldDomain::from_ranges(config.widths, ranges.lo_range, config.f);
  result.configurations = domain.world_count();

  std::vector<WorstCaseTracker> trackers = engine::enumerate_blocks(
      domain, config.num_threads, [&config] { return WorstCaseTracker{&config}; });

  // Deterministic merge in block order: strict > keeps the earliest block on
  // ties, i.e. the lowest-index maximising configuration overall.
  for (WorstCaseTracker& tracker : trackers) {
    if (tracker.max_width > result.max_width) {
      result.max_width = tracker.max_width;
      result.argmax = std::move(tracker.argmax);
    }
  }
  return result;
}

Tick worst_case_no_attack(std::span<const Tick> widths, int f) {
  WorstCaseConfig config;
  config.widths.assign(widths.begin(), widths.end());
  config.f = f;
  return worst_case_fusion(config).max_width;
}

Tick worst_case_over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                          std::vector<SensorId>* best_set, unsigned num_threads) {
  const std::size_t n = widths.size();
  Tick best = -1;

  // Enumerate fa-subsets via a bitmask (n is small for exhaustive search).
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) != fa) continue;
    WorstCaseConfig config;
    config.widths.assign(widths.begin(), widths.end());
    config.f = f;
    config.num_threads = num_threads;
    for (std::size_t id = 0; id < n; ++id) {
      if (mask & (1ULL << id)) config.attacked.push_back(id);
    }
    const Tick value = worst_case_fusion(config).max_width;
    if (value > best) {
      best = value;
      if (best_set != nullptr) *best_set = config.attacked;
    }
  }
  return best;
}

}  // namespace arsf::sim
