#include "sim/worstcase.h"

#include <algorithm>

namespace arsf::sim {

namespace {

struct Ranges {
  std::vector<TickInterval> lo_range;  ///< allowed lower bounds per sensor
};

Ranges placement_ranges(const WorstCaseConfig& config) {
  // Correct interval i contains 0: lo in [-w_i, 0].  Attacked intervals can
  // only influence the fusion interval if they intersect the span correct
  // intervals can reach, which is [-W, W] with W = max width; allow the full
  // touching range.
  Tick max_width = 0;
  for (Tick w : config.widths) max_width = std::max(max_width, w);

  Ranges ranges;
  ranges.lo_range.reserve(config.widths.size());
  for (SensorId id = 0; id < config.widths.size(); ++id) {
    const bool attacked = std::binary_search(config.attacked.begin(), config.attacked.end(), id);
    const Tick w = config.widths[id];
    if (attacked) {
      ranges.lo_range.push_back(TickInterval{-max_width - w, max_width});
    } else {
      ranges.lo_range.push_back(TickInterval{-w, 0});
    }
  }
  return ranges;
}

}  // namespace

WorstCaseResult worst_case_fusion(const WorstCaseConfig& config) {
  const std::size_t n = config.widths.size();
  WorstCaseResult result;
  if (n == 0) return result;

  const Ranges ranges = placement_ranges(config);
  result.configurations = 1;
  for (const auto& range : ranges.lo_range) {
    result.configurations *= static_cast<std::uint64_t>(range.width()) + 1;
  }

  std::vector<Tick> lows(n);
  std::vector<TickInterval> intervals(n);
  for (std::size_t i = 0; i < n; ++i) {
    lows[i] = ranges.lo_range[i].lo;
    intervals[i] = TickInterval{lows[i], lows[i] + config.widths[i]};
  }

  for (;;) {
    const TickInterval fused = fused_interval_ticks(intervals, config.f);
    if (!fused.is_empty()) {
      bool admissible = true;
      if (config.require_undetected) {
        for (SensorId id : config.attacked) {
          if (!intervals[id].intersects(fused)) {
            admissible = false;
            break;
          }
        }
      }
      if (admissible && fused.width() > result.max_width) {
        result.max_width = fused.width();
        result.argmax = intervals;
      }
    }

    std::size_t digit = 0;
    while (digit < n) {
      if (lows[digit] < ranges.lo_range[digit].hi) {
        ++lows[digit];
        intervals[digit] = TickInterval{lows[digit], lows[digit] + config.widths[digit]};
        break;
      }
      lows[digit] = ranges.lo_range[digit].lo;
      intervals[digit] = TickInterval{lows[digit], lows[digit] + config.widths[digit]};
      ++digit;
    }
    if (digit == n) break;
  }
  return result;
}

Tick worst_case_no_attack(std::span<const Tick> widths, int f) {
  WorstCaseConfig config;
  config.widths.assign(widths.begin(), widths.end());
  config.f = f;
  return worst_case_fusion(config).max_width;
}

Tick worst_case_over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                          std::vector<SensorId>* best_set) {
  const std::size_t n = widths.size();
  Tick best = -1;

  // Enumerate fa-subsets via a bitmask (n is small for exhaustive search).
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) != fa) continue;
    WorstCaseConfig config;
    config.widths.assign(widths.begin(), widths.end());
    config.f = f;
    for (std::size_t id = 0; id < n; ++id) {
      if (mask & (1ULL << id)) config.attacked.push_back(id);
    }
    const Tick value = worst_case_fusion(config).max_width;
    if (value > best) {
      best = value;
      if (best_set != nullptr) *best_set = config.attacked;
    }
  }
  return best;
}

}  // namespace arsf::sim
