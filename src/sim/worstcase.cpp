#include "sim/worstcase.h"

#include <algorithm>

#include "sim/engine/attacked_lane.h"
#include "sim/engine/engine.h"

namespace arsf::sim {

namespace {

struct Ranges {
  std::vector<TickInterval> lo_range;  ///< allowed lower bounds per sensor
};

Ranges placement_ranges(const WorstCaseConfig& config) {
  // Correct interval i contains 0: lo in [-w_i, 0].  Attacked intervals can
  // only influence the fusion interval if they intersect the span correct
  // intervals can reach, which is [-W, W] with W = max width; allow the full
  // touching range.
  Tick max_width = 0;
  for (Tick w : config.widths) max_width = std::max(max_width, w);

  Ranges ranges;
  ranges.lo_range.reserve(config.widths.size());
  for (SensorId id = 0; id < config.widths.size(); ++id) {
    const bool attacked = std::binary_search(config.attacked.begin(), config.attacked.end(), id);
    const Tick w = config.widths[id];
    if (attacked) {
      ranges.lo_range.push_back(TickInterval{-max_width - w, max_width});
    } else {
      ranges.lo_range.push_back(TickInterval{-w, 0});
    }
  }
  return ranges;
}

/// Per-block argmax tracker.  Keeps the *first* configuration (lowest world
/// index within the block) that strictly exceeds the running maximum, so
/// merging blocks in index order reproduces the serial scan exactly.
struct WorstCaseTracker {
  const WorstCaseConfig* config = nullptr;
  Tick max_width = -1;
  std::vector<TickInterval> argmax;

  void operator()(std::uint64_t /*index*/, TickInterval fused,
                  const engine::IncrementalSweep& sweep) {
    if (fused.is_empty() || fused.width() <= max_width) return;
    if (config->require_undetected) {
      for (SensorId id : config->attacked) {
        if (!sweep.intervals()[id].intersects(fused)) return;
      }
    }
    max_width = fused.width();
    argmax.assign(sweep.intervals().begin(), sweep.intervals().end());
  }
};

}  // namespace

WorstCaseResult worst_case_fusion(const WorstCaseConfig& config) {
  const std::size_t n = config.widths.size();
  WorstCaseResult result;
  if (n == 0) return result;

  const Ranges ranges = placement_ranges(config);
  const engine::WorldDomain domain =
      engine::WorldDomain::from_ranges(config.widths, ranges.lo_range, config.f);
  result.configurations = domain.world_count();

  std::vector<WorstCaseTracker> trackers = engine::enumerate_blocks(
      domain, config.num_threads, [&config] { return WorstCaseTracker{&config}; },
      config.cancel);

  // Deterministic merge in block order: strict > keeps the earliest block on
  // ties, i.e. the lowest-index maximising configuration overall.
  for (WorstCaseTracker& tracker : trackers) {
    if (tracker.max_width > result.max_width) {
      result.max_width = tracker.max_width;
      result.argmax = std::move(tracker.argmax);
    }
  }
  return result;
}

WorstCaseResult worst_case_fusion_fast(const WorstCaseConfig& config) {
  const std::size_t n = config.widths.size();
  WorstCaseResult result;
  if (n == 0) return result;

  const Ranges ranges = placement_ranges(config);
  const engine::WorstCaseLane lane = engine::WorstCaseLane::build(
      config.widths, ranges.lo_range, config.f, config.attacked, config.require_undetected);
  result.configurations = lane.domain.world_count();

  engine::WorstCaseBest best =
      engine::worst_case_lane_search(lane, config.num_threads, config.cancel);
  result.max_width = best.max_width;
  result.argmax = std::move(best.argmax);
  return result;
}

Tick worst_case_no_attack(std::span<const Tick> widths, int f) {
  WorstCaseConfig config;
  config.widths.assign(widths.begin(), widths.end());
  config.f = f;
  return worst_case_fusion(config).max_width;
}

namespace {

std::vector<SensorId> attacked_of_mask(std::uint64_t mask, std::size_t n) {
  std::vector<SensorId> attacked;
  for (std::size_t id = 0; id < n; ++id) {
    if (mask & (1ULL << id)) attacked.push_back(id);
  }
  return attacked;
}

/// No fa-subset exists beyond n; a silent -1 would be indistinguishable
/// from "every configuration fused empty", so every over-sets entry point
/// rejects the cardinality loudly, naming itself in @p entry_point.
void check_subset_cardinality(const char* entry_point, std::size_t n, std::size_t fa) {
  if (fa > n) {
    throw std::invalid_argument(std::string{entry_point} + ": fa (" + std::to_string(fa) +
                                ") exceeds the number of sensors (" + std::to_string(n) +
                                "); no fa-subset exists");
  }
  // Subset bitmasks are uint64; beyond 63 sensors the flat loop's 1 << n is
  // undefined.  Reject like the BnB engine does instead of wrapping.
  if (n > 63) {
    throw std::invalid_argument(std::string{entry_point} +
                                ": subset bitmasks support at most 63 sensors");
  }
}

Tick over_sets_impl(const char* entry_point, std::span<const Tick> widths, int f,
                    std::size_t fa, std::vector<SensorId>* best_set, unsigned num_threads,
                    bool require_undetected, const engine::CancelToken* cancel,
                    WorstCaseResult (*search)(const WorstCaseConfig&)) {
  const std::size_t n = widths.size();
  check_subset_cardinality(entry_point, n, fa);

  // Enumerate fa-subsets via a bitmask (n is small for exhaustive search).
  std::vector<std::uint64_t> masks;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcountll(mask)) == fa) masks.push_back(mask);
  }
  // fa <= n <= 63 guarantees at least one subset (possibly the empty one).

  // The outer loop is embarrassingly parallel: one per-set search per task,
  // each running its engine serially (a nested fan-out would just contend
  // for the same workers).  values[i] makes the merge independent of task
  // scheduling; scanning it in mask order with a strict > reproduces the
  // historical serial semantics exactly, including which maximising set
  // best_set reports (the lowest mask).
  std::vector<Tick> values(masks.size());
  const auto evaluate = [&](std::size_t i) {
    WorstCaseConfig config;
    config.widths.assign(widths.begin(), widths.end());
    config.f = f;
    config.require_undetected = require_undetected;
    config.num_threads = 1;
    config.cancel = cancel;
    config.attacked = attacked_of_mask(masks[i], n);
    values[i] = search(config).max_width;
  };

  if (num_threads == 0) num_threads = engine::ThreadPool::default_threads();
  if (masks.size() == 1) {
    // A single subset has no outer parallelism; give the per-set search the
    // full fan-out instead.
    WorstCaseConfig config;
    config.widths.assign(widths.begin(), widths.end());
    config.f = f;
    config.require_undetected = require_undetected;
    config.num_threads = num_threads;
    config.cancel = cancel;
    config.attacked = attacked_of_mask(masks[0], n);
    values[0] = search(config).max_width;
  } else if (num_threads == 1) {
    for (std::size_t i = 0; i < masks.size(); ++i) {
      if (cancel != nullptr) cancel->check();
      evaluate(i);
    }
  } else if (num_threads >= engine::ThreadPool::shared().size()) {
    engine::ThreadPool::shared().run(masks.size(), evaluate, cancel);
  } else {
    engine::ThreadPool pool{num_threads};
    pool.run(masks.size(), evaluate, cancel);
  }

  Tick best = -1;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    if (values[i] > best) {
      best = values[i];
      if (best_set != nullptr) *best_set = attacked_of_mask(masks[i], n);
    }
  }
  return best;
}

}  // namespace

Tick worst_case_over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                          std::vector<SensorId>* best_set, unsigned num_threads,
                          bool require_undetected, const engine::CancelToken* cancel) {
  return over_sets_impl("worst_case_over_sets", widths, f, fa, best_set, num_threads,
                        require_undetected, cancel, &worst_case_fusion);
}

Tick worst_case_over_sets_fast(std::span<const Tick> widths, int f, std::size_t fa,
                               std::vector<SensorId>* best_set, unsigned num_threads,
                               bool require_undetected, const engine::CancelToken* cancel) {
  return over_sets_impl("worst_case_over_sets_fast", widths, f, fa, best_set, num_threads,
                        require_undetected, cancel, &worst_case_fusion_fast);
}

Tick worst_case_over_sets_bnb(std::span<const Tick> widths, int f, std::size_t fa,
                              std::vector<SensorId>* best_set, unsigned num_threads,
                              bool require_undetected, engine::SubsetSearchStats* stats,
                              const engine::CancelToken* cancel) {
  check_subset_cardinality("worst_case_over_sets_bnb", widths.size(), fa);
  // One representative per attacked-width multiset, on the run-batched
  // per-set lane.  The evaluator is a pure function of the attacked-width
  // multiset (see subset_search.h) because the per-set max width is
  // invariant under permuting equal-width sensors between roles.
  const engine::SubsetEvaluator evaluate = [&](const std::vector<SensorId>& attacked,
                                               unsigned threads) {
    WorstCaseConfig config;
    config.widths.assign(widths.begin(), widths.end());
    config.f = f;
    config.require_undetected = require_undetected;
    config.num_threads = threads;
    config.cancel = cancel;
    config.attacked = attacked;
    return worst_case_fusion_fast(config).max_width;
  };
  const engine::SubsetSearchResult result =
      engine::subset_search_over_sets(widths, f, fa, evaluate, num_threads, stats, cancel);
  if (result.found && best_set != nullptr) {
    *best_set = attacked_of_mask(result.best_mask, widths.size());
  }
  return result.max_width;
}

}  // namespace arsf::sim
