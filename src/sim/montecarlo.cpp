#include "sim/montecarlo.h"

namespace arsf::sim {

MonteCarloResult run_monte_carlo(const MonteCarloConfig& config) {
  config.system.validate();
  const std::size_t n = config.system.n();
  const std::vector<Tick> widths = tick_widths(config.system, config.quant);

  support::Rng rng{config.seed};
  support::Rng schedule_rng = rng.split();
  support::Rng world_rng = rng.split();
  support::Rng policy_rng = rng.split();

  sched::ScheduleGenerator generator =
      config.fixed_order.empty()
          ? sched::ScheduleGenerator::of_kind(config.schedule, config.system, schedule_rng.next())
          : sched::ScheduleGenerator::fixed(config.fixed_order);

  // The attacked set is fixed across rounds; ties are resolved against a
  // representative order (ascending for kRandom, where slots vary anyway).
  const sched::Order representative = config.fixed_order.empty() &&
                                              config.schedule != sched::ScheduleKind::kRandom
                                          ? generator.next()
                                          : sched::ascending_order(config.system);
  MonteCarloResult result;
  result.attacked = sched::choose_attacked_set(config.system, representative, config.fa,
                                               config.attacked_rule, &rng);

  if (config.policy != nullptr) config.policy->reset();

  // For fixed/deterministic schedules the slot order — and with it the whole
  // round setup (attacked set and widths never change across rounds) — is
  // invariant, so build it once instead of re-validating and re-sorting it
  // every round.  Only kRandom redraws the order per round.
  const bool per_round_order =
      config.fixed_order.empty() && config.schedule == sched::ScheduleKind::kRandom;
  attack::AttackSetup fixed_setup;
  if (!per_round_order && config.rounds > 0) {
    fixed_setup = attack::make_setup(config.system, config.quant, result.attacked,
                                     generator.next());
  }

  std::vector<TickInterval> readings(n);
  attack::AttackSetup round_setup;
  for (std::size_t round = 0; round < config.rounds; ++round) {
    if (config.cancel != nullptr) config.cancel->check();
    if (per_round_order) {
      round_setup =
          attack::make_setup(config.system, config.quant, result.attacked, generator.next());
    }
    const attack::AttackSetup& setup = per_round_order ? round_setup : fixed_setup;

    for (std::size_t i = 0; i < n; ++i) {
      const Tick lo = world_rng.uniform_int(-widths[i], 0);
      readings[i] = TickInterval{lo, lo + widths[i]};
    }

    const Tick clean = fused_width_ticks(readings, setup.f);
    result.width_no_attack.add(clean > 0 ? static_cast<double>(clean) * config.quant.step : 0.0);

    if (result.attacked.empty() || config.policy == nullptr) {
      result.width.add(clean > 0 ? static_cast<double>(clean) * config.quant.step : 0.0);
      if (clean < 0) ++result.empty_fusion_rounds;
      continue;
    }

    const TickRoundResult tick_round =
        run_tick_round(setup, readings, config.policy, policy_rng, config.oracle);
    if (tick_round.fused.is_empty()) {
      ++result.empty_fusion_rounds;
      result.width.add(0.0);
    } else {
      result.width.add(static_cast<double>(tick_round.fused.width()) * config.quant.step);
    }
    if (tick_round.attacked_detected) ++result.detected_rounds;
  }
  return result;
}

}  // namespace arsf::sim
