#pragma once
// Exact expectation by exhaustive world enumeration.
//
// This reproduces the paper's Table I methodology: "we generate all possible
// combinations of measurements for all sensors and take the average length
// of the fusion interval" on a discretised real line.  A *world* places each
// sensor's correct reading on the tick grid: with the true value fixed at 0
// (widths are translation invariant), sensor i's lower bound ranges over
// [-w_i, 0], so there are prod_i (w_i + 1) equally likely worlds.  For every
// world the full protocol round is executed (the attacker's policy decides
// at her slots with exactly her knowledge) and the fused width recorded.
//
// The attacker's decisions are memoised inside ExpectationPolicy under
// translation canonicalisation, so the enumeration is fast even though the
// inner optimisation is itself an expectation over placements.

#include <cstdint>

#include "sim/engine/cancel.h"
#include "sim/protocol.h"

namespace arsf::sim {

struct EnumerateConfig {
  SystemConfig system;
  Quantizer quant{1.0};
  sched::Order order;                ///< fixed slot order for every world
  std::vector<SensorId> attacked;    ///< compromised sensors (may be empty)
  attack::AttackPolicy* policy = nullptr;
  bool oracle = false;               ///< feed actual placements (OraclePolicy)
  std::uint64_t max_worlds = 200'000'000;  ///< safety valve, throws beyond
  /// Worker fan-out for the clean/no-policy enumeration (0 = one block per
  /// hardware thread, 1 = serial).  Results are bit-identical for every
  /// value: all merged accumulators are exact integer sums or min/max.  The
  /// stateful-policy path always runs serially (the policy memo is shared
  /// state) but still uses the incremental engine.
  unsigned num_threads = 0;
  /// Optional cooperative cancellation (nullptr = not cancellable): polled
  /// at block granularity, aborts via engine::CancelledError, never alters a
  /// completing enumeration's result.
  const engine::CancelToken* cancel = nullptr;
};

struct EnumerateResult {
  double expected_width = 0.0;            ///< E|S| under attack (value units)
  double expected_width_no_attack = 0.0;  ///< E|S| with everyone correct
  std::uint64_t worlds = 0;
  std::uint64_t detected_worlds = 0;      ///< worlds where an attacked sensor was flagged
  std::uint64_t empty_fusion_worlds = 0;  ///< worlds with an empty fusion region
  double min_width = 0.0;
  double max_width = 0.0;
};

/// Enumerates every world and returns the exact expectation (with respect to
/// the grid).  Throws std::invalid_argument when the world count exceeds
/// config.max_worlds or the widths do not sit on the quantiser grid.
///
/// Runs on the sim/engine/ subsystem: an incremental endpoint sweep per
/// world (no re-sort) and, for the clean and no-policy paths, a thread-pool
/// fan-out over contiguous world-index blocks with deterministic block-order
/// merging.  Results are bit-identical to
/// enumerate_expected_width_reference() for every thread count.
[[nodiscard]] EnumerateResult enumerate_expected_width(const EnumerateConfig& config);

/// Pre-engine reference implementation: single-threaded odometer with a full
/// endpoint re-sort per world.  Kept as the parity oracle for tests and the
/// baseline for bench/perf_enumerate.cpp; config.num_threads is ignored.
[[nodiscard]] EnumerateResult enumerate_expected_width_reference(const EnumerateConfig& config);

/// Number of worlds the configuration would enumerate.
[[nodiscard]] std::uint64_t world_count(const SystemConfig& system, const Quantizer& quant);

}  // namespace arsf::sim
