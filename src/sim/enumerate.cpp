#include "sim/enumerate.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/engine/engine.h"

namespace arsf::sim {

std::uint64_t world_count(const SystemConfig& system, const Quantizer& quant) {
  const auto widths = tick_widths(system, quant);
  std::vector<std::uint64_t> radices;
  radices.reserve(widths.size());
  // Slot i's lower bound ranges over [-w_i, 0]: w_i + 1 placements.
  for (Tick w : widths) radices.push_back(static_cast<std::uint64_t>(w) + 1);
  return engine::WorldCodec::saturating_product(radices);
}

namespace {

/// Shared validation; returns the round setup and the world count.
attack::AttackSetup validated_setup(const EnumerateConfig& config, std::uint64_t& worlds) {
  config.system.validate();
  if (!sched::is_valid_order(config.order, config.system.n())) {
    throw std::invalid_argument("enumerate_expected_width: invalid order");
  }
  worlds = world_count(config.system, config.quant);
  if (worlds > config.max_worlds) {
    throw std::invalid_argument("enumerate_expected_width: world count " +
                                std::to_string(worlds) + " exceeds max_worlds");
  }
  return attack::make_setup(config.system, config.quant, config.attacked, config.order);
}

}  // namespace

EnumerateResult enumerate_expected_width(const EnumerateConfig& config) {
  std::uint64_t worlds = 0;
  const attack::AttackSetup setup = validated_setup(config, worlds);

  const engine::WorldDomain domain =
      engine::WorldDomain::all_contain_zero(setup.widths, setup.f);

  EnumerateResult result;
  result.worlds = worlds;

  // Reset regardless of whether the attacked path runs, matching the
  // reference implementation's side effects on the caller's policy object.
  if (config.policy != nullptr) config.policy->reset();

  // Clean expectation: fully parallel, run-batched (the attacked path reuses
  // it as its no-attack baseline).
  const engine::CleanStats clean =
      engine::clean_statistics(domain, config.num_threads, config.cancel);

  std::uint64_t attacked_sum = 0;
  Tick min_width = 0;
  Tick max_width = 0;

  const bool with_policy = !config.attacked.empty() && config.policy != nullptr;
  if (!with_policy) {
    attacked_sum = clean.width_sum;
    min_width = clean.min_width;
    max_width = clean.max_width;
  } else {
    // Stateful-policy path: serial (the memoised policy is shared mutable
    // state), but the readings odometer still rides the incremental engine.
    support::Rng rng{0xdecafbadULL};  // policies on the exact path ignore it
    min_width = std::numeric_limits<Tick>::max();
    max_width = std::numeric_limits<Tick>::min();
    engine::enumerate_block(
        domain, 0, worlds,
        [&](std::uint64_t /*index*/, TickInterval /*clean_fused*/,
            const engine::IncrementalSweep& sweep) {
          const TickRoundResult round =
              run_tick_round(setup, sweep.intervals(), config.policy, rng, config.oracle);
          Tick width = 0;
          if (round.fused.is_empty()) {
            ++result.empty_fusion_worlds;
          } else {
            width = round.fused.width();
          }
          if (round.attacked_detected) ++result.detected_worlds;
          attacked_sum += static_cast<std::uint64_t>(width);
          min_width = std::min(min_width, width);
          max_width = std::max(max_width, width);
        },
        config.cancel);
  }

  const double scale = config.quant.step / static_cast<double>(worlds);
  result.expected_width = static_cast<double>(attacked_sum) * scale;
  result.expected_width_no_attack = static_cast<double>(clean.width_sum) * scale;
  result.min_width = static_cast<double>(min_width) * config.quant.step;
  result.max_width = static_cast<double>(max_width) * config.quant.step;
  return result;
}

EnumerateResult enumerate_expected_width_reference(const EnumerateConfig& config) {
  std::uint64_t worlds = 0;
  const attack::AttackSetup setup = validated_setup(config, worlds);
  const std::vector<Tick>& widths = setup.widths;
  const std::size_t n = config.system.n();

  if (config.policy != nullptr) config.policy->reset();

  EnumerateResult result;
  result.worlds = worlds;
  result.min_width = std::numeric_limits<double>::infinity();
  result.max_width = -std::numeric_limits<double>::infinity();

  double attacked_sum = 0.0;
  double clean_sum = 0.0;

  // Odometer over lower bounds: reading i spans [lo_i, lo_i + w_i] with
  // lo_i in [-w_i, 0] (the true value is pinned at 0).
  std::vector<Tick> lows(n);
  std::vector<TickInterval> readings(n);
  for (std::size_t i = 0; i < n; ++i) {
    lows[i] = -widths[i];
    readings[i] = TickInterval{lows[i], lows[i] + widths[i]};
  }

  support::Rng rng{0xdecafbadULL};  // policies on the exact path ignore it

  for (;;) {
    // Clean (no-attack) width for the same world.
    const Tick clean_width = fused_width_ticks(readings, setup.f);
    clean_sum += clean_width > 0 ? static_cast<double>(clean_width) : 0.0;

    double width_value = 0.0;
    if (config.attacked.empty() || config.policy == nullptr) {
      width_value = clean_width > 0 ? static_cast<double>(clean_width) : 0.0;
      if (clean_width < 0) ++result.empty_fusion_worlds;
    } else {
      const TickRoundResult round =
          run_tick_round(setup, readings, config.policy, rng, config.oracle);
      if (round.fused.is_empty()) {
        ++result.empty_fusion_worlds;
      } else {
        width_value = static_cast<double>(round.fused.width());
      }
      if (round.attacked_detected) ++result.detected_worlds;
    }
    attacked_sum += width_value;
    result.min_width = std::min(result.min_width, width_value);
    result.max_width = std::max(result.max_width, width_value);

    // Advance the world odometer.
    std::size_t digit = 0;
    while (digit < n) {
      if (lows[digit] < 0) {
        ++lows[digit];
        readings[digit] = TickInterval{lows[digit], lows[digit] + widths[digit]};
        break;
      }
      lows[digit] = -widths[digit];
      readings[digit] = TickInterval{lows[digit], lows[digit] + widths[digit]};
      ++digit;
    }
    if (digit == n) break;
  }

  const double scale = config.quant.step / static_cast<double>(worlds);
  result.expected_width = attacked_sum * scale;
  result.expected_width_no_attack = clean_sum * scale;
  result.min_width *= config.quant.step;
  result.max_width *= config.quant.step;
  return result;
}

}  // namespace arsf::sim
