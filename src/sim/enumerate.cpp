#include "sim/enumerate.h"

#include <limits>
#include <stdexcept>

namespace arsf::sim {

std::uint64_t world_count(const SystemConfig& system, const Quantizer& quant) {
  const auto widths = tick_widths(system, quant);
  std::uint64_t count = 1;
  for (Tick w : widths) {
    const auto factor = static_cast<std::uint64_t>(w) + 1;
    if (count > std::numeric_limits<std::uint64_t>::max() / factor) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    count *= factor;
  }
  return count;
}

EnumerateResult enumerate_expected_width(const EnumerateConfig& config) {
  config.system.validate();
  const std::size_t n = config.system.n();
  if (!sched::is_valid_order(config.order, n)) {
    throw std::invalid_argument("enumerate_expected_width: invalid order");
  }
  const std::uint64_t worlds = world_count(config.system, config.quant);
  if (worlds > config.max_worlds) {
    throw std::invalid_argument("enumerate_expected_width: world count " +
                                std::to_string(worlds) + " exceeds max_worlds");
  }

  const attack::AttackSetup setup =
      attack::make_setup(config.system, config.quant, config.attacked, config.order);
  const std::vector<Tick>& widths = setup.widths;

  if (config.policy != nullptr) config.policy->reset();

  EnumerateResult result;
  result.worlds = worlds;
  result.min_width = std::numeric_limits<double>::infinity();
  result.max_width = -std::numeric_limits<double>::infinity();

  double attacked_sum = 0.0;
  double clean_sum = 0.0;

  // Odometer over lower bounds: reading i spans [lo_i, lo_i + w_i] with
  // lo_i in [-w_i, 0] (the true value is pinned at 0).
  std::vector<Tick> lows(n);
  std::vector<TickInterval> readings(n);
  for (std::size_t i = 0; i < n; ++i) {
    lows[i] = -widths[i];
    readings[i] = TickInterval{lows[i], lows[i] + widths[i]};
  }

  support::Rng rng{0xdecafbadULL};  // policies on the exact path ignore it

  for (;;) {
    // Clean (no-attack) width for the same world.
    const Tick clean_width = fused_width_ticks(readings, setup.f);
    clean_sum += clean_width > 0 ? static_cast<double>(clean_width) : 0.0;

    double width_value = 0.0;
    if (config.attacked.empty() || config.policy == nullptr) {
      width_value = clean_width > 0 ? static_cast<double>(clean_width) : 0.0;
      if (clean_width < 0) ++result.empty_fusion_worlds;
    } else {
      const TickRoundResult round =
          run_tick_round(setup, readings, config.policy, rng, config.oracle);
      if (round.fused.is_empty()) {
        ++result.empty_fusion_worlds;
      } else {
        width_value = static_cast<double>(round.fused.width());
      }
      if (round.attacked_detected) ++result.detected_worlds;
    }
    attacked_sum += width_value;
    result.min_width = std::min(result.min_width, width_value);
    result.max_width = std::max(result.max_width, width_value);

    // Advance the world odometer.
    std::size_t digit = 0;
    while (digit < n) {
      if (lows[digit] < 0) {
        ++lows[digit];
        readings[digit] = TickInterval{lows[digit], lows[digit] + widths[digit]};
        break;
      }
      lows[digit] = -widths[digit];
      readings[digit] = TickInterval{lows[digit], lows[digit] + widths[digit]};
      ++digit;
    }
    if (digit == n) break;
  }

  const double scale = config.quant.step / static_cast<double>(worlds);
  result.expected_width = attacked_sum * scale;
  result.expected_width_no_attack = clean_sum * scale;
  result.min_width *= config.quant.step;
  result.max_width *= config.quant.step;
  return result;
}

}  // namespace arsf::sim
