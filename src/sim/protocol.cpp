#include "sim/protocol.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace arsf::sim {

TickRoundResult run_tick_round(const attack::AttackSetup& setup,
                               std::span<const TickInterval> readings_by_id,
                               attack::AttackPolicy* policy, support::Rng& rng, bool oracle) {
  const std::size_t n = static_cast<std::size_t>(setup.n);
  assert(readings_by_id.size() == n);

  auto is_attacked = [&](SensorId id) {
    return std::binary_search(setup.attacked.begin(), setup.attacked.end(), id);
  };

  // Delta: intersection of the attacked sensors' correct readings.
  TickInterval delta{std::numeric_limits<Tick>::min(), std::numeric_limits<Tick>::max()};
  for (SensorId id : setup.attacked) delta = delta.intersect(readings_by_id[id]);

  TickRoundResult result;
  result.transmitted.assign(n, TickInterval::empty_interval());

  std::vector<TickInterval> seen;          // correct intervals so far (slot order)
  std::vector<TickInterval> my_sent;       // attacker's transmitted intervals
  seen.reserve(n);

  for (std::size_t slot = 0; slot < n; ++slot) {
    const SensorId id = setup.order[slot];
    if (!is_attacked(id) || policy == nullptr) {
      result.transmitted[id] = readings_by_id[id];
      if (!is_attacked(id)) seen.push_back(readings_by_id[id]);
      else my_sent.push_back(readings_by_id[id]);
      continue;
    }

    attack::AttackContext ctx;
    ctx.setup = &setup;
    ctx.delta = delta;
    ctx.seen = seen;
    ctx.my_sent = my_sent;
    ctx.current_slot = slot;
    for (std::size_t s = slot; s < n; ++s) {
      const SensorId later = setup.order[s];
      if (is_attacked(later)) {
        ctx.remaining_slots.push_back(s);
        ctx.remaining_widths.push_back(setup.widths[later]);
        ctx.remaining_readings.push_back(readings_by_id[later]);
      } else if (s > slot) {
        ctx.unseen_widths.push_back(setup.widths[later]);
        if (oracle) ctx.unseen_actual.push_back(readings_by_id[later]);
      }
    }

    const TickInterval decision = policy->decide(ctx, rng);
    if (decision.width() != setup.widths[id]) {
      throw std::logic_error("attack policy returned an interval of the wrong width");
    }
    result.transmitted[id] = decision;
    my_sent.push_back(decision);
  }

  result.fused = fused_interval_ticks(result.transmitted, setup.f);
  if (!result.fused.is_empty()) {
    for (SensorId id = 0; id < n; ++id) {
      if (!result.transmitted[id].intersects(result.fused)) {
        if (is_attacked(id)) {
          result.attacked_detected = true;
        } else {
          result.correct_flagged = true;
        }
      }
    }
  }
  return result;
}

FusionRound::FusionRound(SystemConfig system, Quantizer quant, std::vector<SensorId> attacked,
                         attack::AttackPolicy* policy, bool oracle)
    : system_(std::move(system)),
      quant_(quant),
      attacked_(std::move(attacked)),
      policy_(policy),
      oracle_(oracle) {
  std::sort(attacked_.begin(), attacked_.end());
  system_.validate();
  (void)tick_widths(system_, quant_);  // validates widths are on the grid
}

RoundResult FusionRound::run(const sched::Order& order,
                             std::span<const Interval> correct_intervals, support::Rng& rng,
                             std::uint64_t round_index) {
  const std::size_t n = system_.n();
  if (correct_intervals.size() != n) {
    throw std::invalid_argument("FusionRound::run: wrong number of readings");
  }
  const attack::AttackSetup setup = attack::make_setup(system_, quant_, attacked_, order);

  std::vector<TickInterval> readings(n);
  for (SensorId id = 0; id < n; ++id) readings[id] = quant_.to_ticks(correct_intervals[id]);

  const TickRoundResult ticks = run_tick_round(setup, readings, policy_, rng, oracle_);

  RoundResult result;
  result.transmitted.assign(n, Interval::empty_interval());

  // Replay the round over the shared bus.  Every payload is derived from the
  // tick representation — the controller works in the bus's fixed-point
  // encoding — so continuous-domain fusion/detection agrees bit-for-bit with
  // the tick engine (no 1-ulp tangency artefacts at the attacker's maximal
  // stealthy placements).
  for (std::size_t slot = 0; slot < n; ++slot) {
    const SensorId id = order[slot];
    const Interval payload = quant_.to_interval(ticks.transmitted[id]);
    bus::Frame frame;
    frame.can_id = static_cast<bus::CanId>(0x100 + id);
    frame.sender = id;
    frame.measurement = payload.midpoint();
    frame.interval = payload;
    frame.round = round_index;
    frame.slot = slot;
    bus_.queue(frame);
    bus_.run_slot(slot);
    result.transmitted[id] = payload;
  }
  bus_.end_round();

  result.fusion = fuse(result.transmitted, system_.f);
  result.detection = detect(result.transmitted, result.fusion);
  if (result.fusion.interval) result.estimate = result.fusion.interval->midpoint();
  for (SensorId id : attacked_) {
    if (id < result.detection.flagged.size() && result.detection.flagged[id]) {
      result.attacked_detected = true;
    }
  }
  return result;
}

}  // namespace arsf::sim
