#include "sim/experiment.h"

#include "scenario/analysis.h"

namespace arsf::sim {

Table1Row compare_schedules(std::span<const double> widths, std::size_t fa,
                            const attack::ExpectationOptions& policy_options, double step,
                            unsigned num_threads) {
  Table1Row row;
  row.widths.assign(widths.begin(), widths.end());
  row.fa = fa;

  // One declarative scenario per schedule; scenario::make_enumerate_setup is
  // the single place widths/schedule/attacked-set/policy become an engine
  // configuration, shared with the registry-driven Runner path.
  for (const sched::ScheduleKind kind :
       {sched::ScheduleKind::kAscending, sched::ScheduleKind::kDescending}) {
    scenario::Scenario s;
    s.name = "table1/compare/" + sched::to_string(kind);
    s.widths = row.widths;
    s.fa = fa;
    s.step = step;
    s.schedule = kind;
    s.policy_options = policy_options;
    s.num_threads = num_threads;

    const scenario::EnumerateSetup setup = scenario::make_enumerate_setup(s);
    const EnumerateResult result = enumerate_expected_width(setup.config);
    if (kind == sched::ScheduleKind::kAscending) {
      row.e_ascending = result.expected_width;
    } else {
      row.e_descending = result.expected_width;
    }
    row.e_no_attack = result.expected_width_no_attack;  // identical both runs
    row.worlds = result.worlds;
    row.detected += result.detected_worlds;
  }
  return row;
}

std::span<const std::pair<std::vector<double>, std::size_t>> paper_table1_configs() {
  static const std::vector<std::pair<std::vector<double>, std::size_t>> configs = {
      {{5, 11, 17}, 1},          {{5, 11, 11}, 1},
      {{5, 8, 17, 20}, 1},       {{5, 8, 8, 11}, 1},
      {{5, 5, 5, 5, 20}, 1},     {{5, 5, 5, 14, 20}, 1},
      {{5, 5, 5, 5, 20}, 2},     {{5, 5, 5, 14, 17}, 2},
  };
  return configs;
}

std::span<const Table1Reference> paper_table1_reference() {
  static const std::vector<Table1Reference> reference = {
      {10.77, 13.58}, {9.43, 10.16}, {7.66, 8.75}, {6.32, 6.53},
      {5.40, 5.57},   {6.33, 7.03},  {5.22, 5.31}, {6.87, 7.74},
  };
  return reference;
}

std::vector<Table1Row> reproduce_table1(const attack::ExpectationOptions& policy_options,
                                        unsigned num_threads) {
  std::vector<Table1Row> rows;
  for (const auto& [widths, fa] : paper_table1_configs()) {
    rows.push_back(compare_schedules(widths, fa, policy_options, 1.0, num_threads));
  }
  return rows;
}

}  // namespace arsf::sim
