#pragma once
// Faults + attacks combined — the extension the paper announces in its
// conclusion: "Since we assumed uncompromised sensors always provide correct
// measurements, an extension of this work will introduce random faults in
// addition to attacks."
//
// The experiment runs Monte Carlo fusion rounds in which the *uncompromised*
// sensors are subject to random fault processes (sensors/fault.h) while the
// attacker simultaneously plays her stealthy policy, and measures:
//
//   * soundness  — how often the fusion interval still contains the truth
//     (guaranteed only while actual liars (faulty + attacked) <= f);
//   * detection  — how often faulty sensors are discarded, and whether the
//     stealthy attacker is ever flagged (she is not: her certificates do not
//     depend on the other sensors being correct);
//   * width      — how much uncertainty faults add on top of the attack.

#include "attack/expectation.h"
#include "schedule/schedule.h"
#include "sensors/fault.h"
#include "sim/engine/cancel.h"
#include "support/stats.h"

namespace arsf::sim {

struct ResilienceConfig {
  SystemConfig system;
  Quantizer quant{1.0};
  sched::ScheduleKind schedule = sched::ScheduleKind::kAscending;
  std::size_t fa = 1;                     ///< compromised sensors (0 = none)
  attack::AttackPolicy* policy = nullptr;
  /// Fault process applied to every *uncompromised* sensor.
  sensors::FaultProcess fault;
  std::size_t rounds = 5'000;
  std::uint64_t seed = 0xfa017ULL;
  /// Optional cooperative cancellation (nullptr = not cancellable): polled
  /// once per round, aborts via engine::CancelledError.
  const engine::CancelToken* cancel = nullptr;
};

struct ResilienceResult {
  std::uint64_t rounds = 0;
  std::uint64_t truth_contained = 0;       ///< fusion interval contains truth
  std::uint64_t empty_fusion = 0;          ///< no point reached n-f overlaps
  std::uint64_t attacked_flagged = 0;      ///< stealthy attacker caught (expect 0)
  std::uint64_t faulty_present = 0;        ///< rounds with >= 1 active fault
  std::uint64_t faulty_flagged = 0;        ///< rounds where a faulty sensor was discarded
  std::uint64_t healthy_flagged = 0;       ///< healthy correct sensor discarded (expect 0)
  std::uint64_t over_budget = 0;           ///< rounds with faulty+attacked > f
  support::RunningStats width;

  [[nodiscard]] double containment_rate() const {
    return rounds ? static_cast<double>(truth_contained) / static_cast<double>(rounds) : 0.0;
  }
};

/// Runs the combined faults + attacks experiment.
[[nodiscard]] ResilienceResult run_resilience(const ResilienceConfig& config);

}  // namespace arsf::sim
