#include "sim/engine/world_codec.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace arsf::sim::engine {

WorldCodec::WorldCodec(std::vector<std::uint64_t> radices) : radices_(std::move(radices)) {
  weights_.reserve(radices_.size());
  for (const std::uint64_t radix : radices_) {
    if (radix == 0) throw std::invalid_argument("WorldCodec: radix must be >= 1");
    weights_.push_back(count_);  // weight of digit i = product of radices below
    if (count_ > std::numeric_limits<std::uint64_t>::max() / radix) {
      count_ = std::numeric_limits<std::uint64_t>::max();
      overflow_ = true;
    } else {
      count_ *= radix;
    }
  }
}

void WorldCodec::decode(std::uint64_t index, std::span<std::uint64_t> out) const {
  assert(out.size() == radices_.size());
  assert(index < count_);
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    out[i] = index % radices_[i];
    index /= radices_[i];
  }
}

std::uint64_t WorldCodec::encode(std::span<const std::uint64_t> digits) const {
  assert(digits.size() == radices_.size());
  std::uint64_t index = 0;
  for (std::size_t i = radices_.size(); i-- > 0;) {
    assert(digits[i] < radices_[i]);
    index = index * radices_[i] + digits[i];
  }
  return index;
}

std::size_t WorldCodec::advance(std::span<std::uint64_t> digits) const {
  assert(digits.size() == radices_.size());
  for (std::size_t i = 0; i < radices_.size(); ++i) {
    if (++digits[i] < radices_[i]) return i + 1;
    digits[i] = 0;
  }
  return 0;  // wrapped past the last world
}

std::uint64_t WorldCodec::saturating_product(std::span<const std::uint64_t> radices) noexcept {
  std::uint64_t count = 1;
  bool overflow = false;
  for (const std::uint64_t radix : radices) {
    if (radix == 0) return 0;  // a zero annihilates even an overflowed prefix
    if (count > std::numeric_limits<std::uint64_t>::max() / radix) {
      overflow = true;
    } else {
      count *= radix;
    }
  }
  return overflow ? std::numeric_limits<std::uint64_t>::max() : count;
}

}  // namespace arsf::sim::engine
