#pragma once
// Composable per-world accumulator visitors — one enumeration, N metrics.
//
// Every analysis over the clean world space (expected fused width, width
// histogram, detection rate, worst-case argmax) walks the identical
// mixed-radix grid; running k of them as k separate enumerations pays k full
// passes over the same worlds.  This header factors the per-world work into
// small *reducers* — the catlass epilogue-fusion shape: independent
// accumulators visited once per element — and a FusedPass combinator that
// drives any set of them through a single IncrementalSweep enumeration.
//
// The reducer contract (init / accept / merge / finish):
//   * init    — clone_empty() returns a fresh zero-state reducer of the same
//               type and configuration (one per worker block);
//   * accept  — accept(index, fused, detected) folds one world in;
//               accept_clean_run() folds a whole digit-0 run of a
//               common-point domain in closed form (the default loops over
//               the run calling accept, so a reducer is correct before it is
//               fast — the override IS the fast lane, and the differential
//               tests pin override == default);
//   * merge   — merge(other) folds a completed block reducer in.  Every
//               reducer's state is exact integer arithmetic (sums, counts,
//               min/max, argmax), so block-order merging is associative and
//               the merged result is bit-identical to a serial walk for any
//               block partition — the same determinism contract
//               enumerate_blocks() documents;
//   * finish  — reading the exact accumulator state; the scenario layer owns
//               the (few, final) double conversions so standalone and fused
//               runs share the identical expressions.
//
// Worlds are accepted EXACTLY once each; indices within a block arrive in
// ascending order (reducers with order-sensitive tie-breaks — the argmax —
// rely on this plus the merge law below).

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "core/interval.h"
#include "sim/engine/engine.h"

namespace arsf::sim::engine {

/// One digit-0 run of a common-point domain: slot 0's lower bound x walks
/// [x_first, x_first + length - 1] while every other slot stands still, and
/// the fusion interval is the clamp form documented at enumerate_clean_block:
///
///     [ clamp(x, lo_min, lo_max) , clamp(x + w0, hi_min, hi_max) ]
///
/// so width(x) is piecewise linear in x with slope in {-1, 0, +1} and
/// breakpoints {lo_min, lo_max, hi_min - w0, hi_max - w0}.
struct CleanRun {
  std::uint64_t first_index = 0;  ///< world index of the run's first world
  std::uint64_t length = 0;       ///< worlds in the run (>= 1)
  Tick x_first = 0;               ///< slot-0 lower bound at the first world
  Tick w0 = 0;                    ///< slot-0 width
  Tick lo_min = 0;                ///< fused lo = clamp(x, lo_min, lo_max)
  Tick lo_max = 0;
  Tick hi_min = 0;                ///< fused hi = clamp(x + w0, hi_min, hi_max)
  Tick hi_max = 0;

  [[nodiscard]] Tick x_last() const noexcept {
    return x_first + static_cast<Tick>(length) - 1;
  }
  [[nodiscard]] TickInterval fused_at(Tick x) const noexcept {
    return TickInterval{clamp_tick(x, lo_min, lo_max), clamp_tick(x + w0, hi_min, hi_max)};
  }
  [[nodiscard]] Tick width_at(Tick x) const noexcept {
    return clamp_tick(x + w0, hi_min, hi_max) - clamp_tick(x, lo_min, lo_max);
  }
};

/// Type-erased reducer base.  Concrete reducers keep their exact integer
/// state public so the scenario layer can "finish" them without another
/// virtual surface.
class WorldReducer {
 public:
  virtual ~WorldReducer() = default;

  /// Fresh zero-state reducer of the same dynamic type and configuration.
  [[nodiscard]] virtual std::unique_ptr<WorldReducer> clone_empty() const = 0;

  /// Folds one world in.  @p fused may be empty (policy paths); @p detected
  /// is the round's attacked-sensor detection flag (always false on clean
  /// enumerations).
  virtual void accept(std::uint64_t index, TickInterval fused, bool detected) = 0;

  /// Folds a whole digit-0 run in.  Default: per-world loop over accept()
  /// with detected = false — the reference the closed-form overrides are
  /// differentially tested against.
  virtual void accept_clean_run(const CleanRun& run);

  /// Folds a completed reducer of the same dynamic type in (blocks merge in
  /// block order).  Throws std::invalid_argument on a type mismatch.
  virtual void merge(const WorldReducer& other) = 0;
};

/// Expected fused width: exact width sum, min/max, empty-fusion and
/// detection counters — the accumulator behind sim::EnumerateResult.  An
/// empty fusion contributes width 0 (and min/max range over those zeros),
/// exactly as enumerate_expected_width's policy path does.
class ExpectedWidthReducer final : public WorldReducer {
 public:
  std::uint64_t width_sum = 0;
  Tick min_width = std::numeric_limits<Tick>::max();
  Tick max_width = std::numeric_limits<Tick>::min();
  std::uint64_t empty_worlds = 0;
  std::uint64_t detected_worlds = 0;

  [[nodiscard]] std::unique_ptr<WorldReducer> clone_empty() const override;
  void accept(std::uint64_t index, TickInterval fused, bool detected) override;
  void accept_clean_run(const CleanRun& run) override;
  void merge(const WorldReducer& other) override;
};

/// Exact width histogram: integer counts over `bins` equal tick ranges of
/// [0, hi_ticks), the top bin additionally catching every width >= hi_ticks
/// (no mass is ever dropped).  Empty fusions are counted separately, not
/// binned.  hi_ticks is a display parameter the caller fixes from the
/// scenario (deterministically), never from the data.
class WidthHistogramReducer final : public WorldReducer {
 public:
  WidthHistogramReducer(std::size_t bins, Tick hi_ticks);

  std::vector<std::uint64_t> counts;  ///< per-bin world counts
  std::uint64_t empty_worlds = 0;
  std::uint64_t total_worlds = 0;     ///< every accepted world, incl. empty

  [[nodiscard]] std::size_t bins() const noexcept { return counts.size(); }
  [[nodiscard]] Tick hi_ticks() const noexcept { return hi_ticks_; }
  /// Bin of a non-negative width: min(w * bins / hi_ticks, bins - 1).
  [[nodiscard]] std::size_t bin_of(Tick width) const noexcept;

  [[nodiscard]] std::unique_ptr<WorldReducer> clone_empty() const override;
  void accept(std::uint64_t index, TickInterval fused, bool detected) override;
  void accept_clean_run(const CleanRun& run) override;
  void merge(const WorldReducer& other) override;

 private:
  /// Adds every integer width in [w_lo, w_hi] once (an affine-piece sweep of
  /// slope +-1): O(bins) bin-range overlaps instead of O(w_hi - w_lo) steps.
  void add_width_range(Tick w_lo, Tick w_hi);

  Tick hi_ticks_;
};

/// Detection / empty-fusion rate counters.
class DetectionRateReducer final : public WorldReducer {
 public:
  std::uint64_t detected_worlds = 0;
  std::uint64_t empty_worlds = 0;
  std::uint64_t total_worlds = 0;

  [[nodiscard]] std::unique_ptr<WorldReducer> clone_empty() const override;
  void accept(std::uint64_t index, TickInterval fused, bool detected) override;
  void accept_clean_run(const CleanRun& run) override;
  void merge(const WorldReducer& other) override;
};

/// Worst-case argmax: the maximal fused width and the LOWEST world index
/// attaining it.  accept() keeps the first occurrence under the ascending
/// per-block order; merge() compares (max_width, -index) lexicographically,
/// which is order-independent — so any block partition, merged in any order,
/// reproduces the serial walk's lowest-index tie-break bit for bit.
class WorstCaseReducer final : public WorldReducer {
 public:
  Tick max_width = std::numeric_limits<Tick>::min();
  std::uint64_t argmax_index = std::numeric_limits<std::uint64_t>::max();

  [[nodiscard]] std::unique_ptr<WorldReducer> clone_empty() const override;
  void accept(std::uint64_t index, TickInterval fused, bool detected) override;
  void accept_clean_run(const CleanRun& run) override;
  void merge(const WorldReducer& other) override;

 private:
  void update(Tick width, std::uint64_t index) noexcept;
};

/// Drives every reducer in @p reducers through worlds [begin, end) of a
/// common-point domain, one accept_clean_run() per digit-0 run — the fused
/// twin of enumerate_clean_block, with the identical cancel poll sites (once
/// at entry, then per digit-0 run).  Throws std::invalid_argument when the
/// domain lacks the common-point guarantee.
void fused_clean_block(const WorldDomain& domain, std::uint64_t begin, std::uint64_t end,
                       std::span<WorldReducer* const> reducers,
                       const CancelToken* cancel = nullptr);

/// One world pass, N reducers.  add() the reducers (the pass owns them),
/// run() the domain, then read each reducer's final state via at<R>(i).
///
/// run() partitions [0, world_count) into at most num_threads contiguous
/// blocks (0 = ThreadPool::default_threads()), walks each block on the
/// shared pool with a private clone_empty() set — the run-batched clean lane
/// (fused_clean_block) for common-point domains, the per-world
/// enumerate_block otherwise — and merges the block reducers into the owned
/// ones in block order.  Cancellation (CancelledError) leaves the owned
/// reducers untouched: merging happens only after every block completed.
class FusedPass {
 public:
  /// Adds a reducer; returns its index for at().
  std::size_t add(std::unique_ptr<WorldReducer> reducer);

  [[nodiscard]] std::size_t size() const noexcept { return reducers_.size(); }
  [[nodiscard]] WorldReducer& at(std::size_t i) { return *reducers_[i]; }
  [[nodiscard]] const WorldReducer& at(std::size_t i) const { return *reducers_[i]; }
  /// Typed access: FusedPass pins no type map, the caller knows what it added.
  template <typename R>
  [[nodiscard]] R& at(std::size_t i) {
    return dynamic_cast<R&>(*reducers_[i]);
  }

  void run(const WorldDomain& domain, unsigned num_threads,
           const CancelToken* cancel = nullptr);

 private:
  std::vector<std::unique_ptr<WorldReducer>> reducers_;
};

}  // namespace arsf::sim::engine
