#pragma once
// Incremental Marzullo sweep.
//
// The enumeration hot loop changes exactly one interval per odometer step
// (amortised: digit 0 moves every step, digit 1 every radix_0 steps, ...), so
// re-sorting all 2n endpoints per world — what fused_interval_ticks does — is
// pure waste.  IncrementalSweep keeps the lows and highs arrays *sorted
// across steps*: replace() removes one endpoint from each array and slides
// the replacement to its place (amortised O(1) for the +1 odometer moves,
// O(n) worst case on digit-carry resets, with n single-digit in practice).
//
// Fusing is then:
//   * fused(threshold)                    — the general two-pointer sweep
//     over the pre-sorted arrays (core/fusion.h), O(n) with no sort;
//   * fused_with_common_point(threshold)  — O(1): when some point is covered
//     by every interval (the clean enumeration paths pin the true value at 0
//     and every correct interval contains it), the coverage count is
//     monotone increasing left of that point and monotone decreasing right
//     of it, so the fusion interval is exactly
//         [ threshold-th smallest low , threshold-th largest high ].

#include <span>
#include <vector>

#include "core/fusion.h"
#include "core/interval.h"

namespace arsf::sim::engine {

class IncrementalSweep {
 public:
  /// Loads a fresh interval set (sorts both endpoint arrays once).
  void reset(std::span<const TickInterval> intervals);

  /// Replaces the interval at @p slot, repairing both sorted arrays.
  void replace(std::size_t slot, TickInterval next);

  [[nodiscard]] std::span<const TickInterval> intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }

  /// The maintained sorted endpoint arrays (ascending) — order statistics of
  /// the current interval set in O(1), used by the run-batched clean path.
  [[nodiscard]] std::span<const Tick> sorted_lows() const noexcept { return lows_; }
  [[nodiscard]] std::span<const Tick> sorted_highs() const noexcept { return highs_; }

  /// Marzullo fusion interval at @p threshold (= n - f); empty interval when
  /// no point reaches the threshold.  Requires 1 <= threshold <= size().
  [[nodiscard]] TickInterval fused(int threshold) const noexcept {
    return fuse_sorted_endpoints_ticks(lows_.data(), highs_.data(), lows_.size(), threshold);
  }

  /// O(1) fusion, valid only when some point is covered by all intervals.
  [[nodiscard]] TickInterval fused_with_common_point(int threshold) const noexcept {
    const std::size_t t = static_cast<std::size_t>(threshold);
    return TickInterval{lows_[t - 1], highs_[lows_.size() - t]};
  }

  /// Appends the maximal segments where at least @p threshold of the current
  /// intervals overlap, in ascending order (disjoint, never touching).  One
  /// two-pointer pass over the maintained sorted arrays, O(n), no sort.
  /// A threshold > size() yields no segments; requires threshold >= 1.
  /// This is what the run-batched worst-case lane (attacked_lane.h) needs
  /// per digit run: the coverage structure of the NON-moving intervals at
  /// thresholds t and t-1 fully determines the fused interval as a function
  /// of the moving interval's position.
  void coverage_segments(int threshold, std::vector<TickInterval>& out) const;

  /// Convex hull of the >= threshold coverage region (the empty interval
  /// when no point reaches it).  This is exactly the Marzullo interval
  /// fused() computes; the only extra behaviour is tolerating a threshold
  /// above size() (an unreachable coverage level, not a precondition error —
  /// the worst-case lane asks for threshold n over its n-1 fixed intervals
  /// whenever f = 0).
  [[nodiscard]] TickInterval coverage_hull(int threshold) const noexcept {
    if (threshold > static_cast<int>(size())) return TickInterval::empty_interval();
    return fused(threshold);
  }

 private:
  /// Moves the element equal to @p old_value to where @p new_value sorts,
  /// sliding the elements in between (arr stays sorted).
  static void bump(std::vector<Tick>& arr, Tick old_value, Tick new_value) noexcept;

  std::vector<TickInterval> intervals_;  ///< by slot
  std::vector<Tick> lows_;               ///< sorted ascending
  std::vector<Tick> highs_;              ///< sorted ascending
};

}  // namespace arsf::sim::engine
