#include "sim/engine/attacked_lane.h"

#include <algorithm>
#include <cassert>

namespace arsf::sim::engine {

namespace {

/// Local alias for the shared sentinel (engine.h).
constexpr Tick kFar = kFarTick;

}  // namespace

WorstCaseLane WorstCaseLane::build(std::span<const Tick> widths,
                                   std::span<const TickInterval> lo_ranges, int f,
                                   std::span<const SensorId> attacked_ids,
                                   bool require_undetected) {
  assert(widths.size() == lo_ranges.size());
  const std::size_t n = widths.size();

  // The original codec fixes the index order the oracle scan uses; its
  // per-digit weights are what lets the permuted walk report argmax ties in
  // that order.
  std::vector<std::uint64_t> orig_radices;
  orig_radices.reserve(n);
  for (const TickInterval& range : lo_ranges) {
    orig_radices.push_back(static_cast<std::uint64_t>(range.width()) + 1);
  }
  const WorldCodec orig_codec{orig_radices};

  // Run slot = largest radix (ties keep the lowest slot); remaining slots
  // follow in original order.
  std::size_t run = 0;
  for (std::size_t slot = 1; slot < n; ++slot) {
    if (orig_radices[slot] > orig_radices[run]) run = slot;
  }

  WorstCaseLane lane;
  lane.require_undetected = require_undetected;
  lane.orig_slot.reserve(n);
  lane.orig_slot.push_back(run);
  for (std::size_t slot = 0; slot < n; ++slot) {
    if (slot != run) lane.orig_slot.push_back(slot);
  }

  std::vector<Tick> perm_widths(n);
  std::vector<TickInterval> perm_ranges(n);
  lane.orig_weight.resize(n);
  lane.attacked.resize(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t orig = lane.orig_slot[slot];
    perm_widths[slot] = widths[orig];
    perm_ranges[slot] = lo_ranges[orig];
    lane.orig_weight[slot] = orig_codec.weight(orig);
    lane.attacked[slot] =
        std::binary_search(attacked_ids.begin(), attacked_ids.end(), orig) ? 1 : 0;
  }
  lane.domain = WorldDomain::from_ranges(perm_widths, perm_ranges, f);
  return lane;
}

void WorstCaseBest::merge(WorstCaseBest&& other) noexcept {
  if (other.max_width > max_width ||
      (other.max_width == max_width && other.max_width >= 0 &&
       other.world_index < world_index)) {
    max_width = other.max_width;
    world_index = other.world_index;
    argmax = std::move(other.argmax);
  }
}

WorstCaseBest worst_case_lane_block(const WorstCaseLane& lane, std::uint64_t begin,
                                    std::uint64_t end, const CancelToken* cancel) {
  WorstCaseBest best;
  if (begin >= end) return best;
  if (cancel != nullptr) cancel->check();

  const WorldDomain& domain = lane.domain;
  const std::size_t n = domain.widths.size();
  const int t = domain.threshold;
  const Tick w0 = domain.widths[0];
  const Tick lo_min0 = domain.lo_min[0];
  const std::uint64_t weight0 = lane.orig_weight[0];
  const bool moving_attacked = lane.attacked[0] != 0;
  const bool stealth = lane.require_undetected;

  std::vector<std::uint64_t> digits(n);
  domain.codec.decode(begin, digits);

  // The non-moving intervals, maintained incrementally across runs.
  std::vector<TickInterval> rest_intervals(n - 1);
  for (std::size_t slot = 1; slot < n; ++slot) {
    rest_intervals[slot - 1] = domain.interval_at(slot, digits[slot]);
  }
  IncrementalSweep rest;
  rest.reset(rest_intervals);

  std::vector<std::size_t> fixed_attacked;  // indices into rest
  for (std::size_t slot = 1; slot < n; ++slot) {
    if (lane.attacked[slot] != 0) fixed_attacked.push_back(slot - 1);
  }

  std::vector<TickInterval> segments;  // reused per run

  // Candidate acceptance: greater width wins, equal width keeps the lower
  // original index — exactly the oracle scan's first-strict-improvement rule.
  std::uint64_t orig_base = 0;  // original-order index contribution of digits 1..n-1
  const auto consider = [&](Tick width, Tick x) {
    const std::uint64_t orig_index =
        orig_base + static_cast<std::uint64_t>(x - lo_min0) * weight0;
    if (width > best.max_width ||
        (width == best.max_width && orig_index < best.world_index)) {
      best.max_width = width;
      best.world_index = orig_index;
      best.argmax.resize(n);
      best.argmax[lane.orig_slot[0]] = TickInterval{x, x + w0};
      for (std::size_t slot = 1; slot < n; ++slot) {
        best.argmax[lane.orig_slot[slot]] = rest.intervals()[slot - 1];
      }
    }
  };

  const std::uint64_t radix0 = domain.codec.radix(0);
  std::uint64_t index = begin;
  for (;;) {
    // Coverage structure of the rest: hull of the >= t region, maximal
    // segments of the >= t-1 region (threshold 0 covers the whole line).
    const TickInterval hull = rest.coverage_hull(t);
    const bool has_hull = !hull.is_empty();
    const Tick amin = has_hull ? hull.lo : kFar;
    const Tick amax = has_hull ? hull.hi : -kFar;
    segments.clear();
    if (t >= 2) {
      rest.coverage_segments(t - 1, segments);
    } else {
      segments.push_back(TickInterval{-kFar, kFar});
    }
    const std::size_t m = segments.size();

    const std::uint64_t run_len = std::min<std::uint64_t>(radix0 - digits[0], end - index);
    const Tick x_first = lo_min0 + static_cast<Tick>(digits[0]);
    const Tick x_last = x_first + static_cast<Tick>(run_len) - 1;

    orig_base = 0;
    for (std::size_t slot = 1; slot < n; ++slot) {
      orig_base += digits[slot] * lane.orig_weight[slot];
    }

    // Piece scan: j = first segment with hi >= x, k = number of segments
    // with lo <= x + w0; both only ever advance as x grows.
    std::size_t j = 0;
    while (j < m && segments[j].hi < x_first) ++j;
    std::size_t k = 0;
    while (k < m && segments[k].lo <= x_first + w0) ++k;

    Tick x = x_first;
    while (x <= x_last) {
      Tick piece_hi = x_last;
      if (j < m) piece_hi = std::min(piece_hi, segments[j].hi);
      if (k < m) piece_hi = std::min(piece_hi, segments[k].lo - w0 - 1);

      if (j < m && k > j) {
        // The window [x, x+w0] overlaps R_{t-1}: fused interval =
        // [min(amin, max(x, lj)), max(amax, min(x + w0, hk))].
        const Tick lj = segments[j].lo;
        const Tick hk = segments[k - 1].hi;
        Tick lo_x = x;
        Tick hi_x = piece_hi;
        bool feasible = true;
        if (stealth) {
          for (const std::size_t ri : fixed_attacked) {
            const TickInterval a = rest.intervals()[ri];
            if (amax < a.lo) {  // hull alone cannot reach a.lo ...
              if (hk < a.lo) { feasible = false; break; }
              lo_x = std::max(lo_x, a.lo - w0);  // ... so x + w0 must
            }
            if (amin > a.hi) {  // hull alone cannot reach a.hi ...
              if (lj > a.hi) { feasible = false; break; }
              hi_x = std::min(hi_x, a.hi);  // ... so max(x, lj) <= a.hi needs x <= a.hi
            }
          }
          if (feasible && moving_attacked) {
            hi_x = std::min(hi_x, std::max(amax, hk));        // x <= fused_hi(x)
            lo_x = std::max(lo_x, std::min(amin, lj) - w0);   // x + w0 >= fused_lo(x)
          }
        }
        if (feasible && lo_x <= hi_x) {
          // width(x) is piecewise linear on [lo_x, hi_x] with kinks only at
          // the clamp corners; the max (and the leftmost point achieving
          // it) lies on one of these candidates.
          Tick candidates[6] = {lo_x,
                                hi_x,
                                clamp_tick(lj, lo_x, hi_x),
                                clamp_tick(amin, lo_x, hi_x),
                                clamp_tick(hk - w0, lo_x, hi_x),
                                clamp_tick(amax - w0, lo_x, hi_x)};
          std::sort(std::begin(candidates), std::end(candidates));
          for (const Tick cand : candidates) {
            const Tick fused_lo = std::min(amin, std::max(cand, lj));
            const Tick fused_hi = std::max(amax, std::min(cand + w0, hk));
            consider(fused_hi - fused_lo, cand);
          }
        }
      } else if (has_hull) {
        // No window overlap: the fused interval is the constant hull.
        Tick lo_x = x;
        Tick hi_x = piece_hi;
        bool feasible = true;
        if (stealth) {
          for (const std::size_t ri : fixed_attacked) {
            const TickInterval a = rest.intervals()[ri];
            if (a.lo > amax || a.hi < amin) { feasible = false; break; }
          }
          if (feasible && moving_attacked) {
            hi_x = std::min(hi_x, amax);
            lo_x = std::max(lo_x, amin - w0);
          }
        }
        if (feasible && lo_x <= hi_x) consider(amax - amin, lo_x);
      }
      // else: fused empty throughout the piece.

      x = piece_hi + 1;
      while (j < m && segments[j].hi < x) ++j;
      while (k < m && segments[k].lo <= x + w0) ++k;
    }

    index += run_len;
    if (index == end) break;
    if (cancel != nullptr) cancel->check();  // per digit-0 run
    digits[0] = radix0 - 1;  // jump the odometer to the run's last world...
    const std::size_t changed = domain.codec.advance(digits);  // ...and step over it
    for (std::size_t slot = 1; slot < changed; ++slot) {
      rest.replace(slot - 1, domain.interval_at(slot, digits[slot]));
    }
  }
  return best;
}

WorstCaseBest worst_case_lane_search(const WorstCaseLane& lane, unsigned num_threads,
                                     const CancelToken* cancel) {
  if (num_threads == 0) num_threads = ThreadPool::default_threads();
  const std::vector<IndexBlock> blocks =
      partition_blocks(lane.domain.world_count(), num_threads);
  std::vector<WorstCaseBest> per_block(blocks.size());
  ThreadPool::shared().run(
      blocks.size(),
      [&](std::size_t i) {
        per_block[i] = worst_case_lane_block(lane, blocks[i].begin, blocks[i].end, cancel);
      },
      cancel);
  WorstCaseBest best;
  for (WorstCaseBest& block : per_block) best.merge(std::move(block));
  return best;
}

}  // namespace arsf::sim::engine
