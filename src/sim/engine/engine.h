#pragma once
// Parallel incremental world-enumeration engine.
//
// A WorldDomain describes a product space of interval placements: slot i has
// a fixed width and a contiguous range of allowed lower bounds.  The engine
// walks a contiguous block of world indices (WorldCodec order: digit 0
// fastest) with an IncrementalSweep, so each odometer step costs an
// amortised O(1) endpoint repair instead of a full endpoint re-sort, and
// hands every world's fusion interval to a pluggable visitor.
//
// Visitors are callables
//
//     visit(std::uint64_t world_index, TickInterval fused,
//           const IncrementalSweep& sweep)
//
// (expected-width accumulator, worst-case argmax tracker, detection counter,
// ... — see sim/enumerate.cpp and sim/worstcase.cpp).  The sweep argument
// exposes the current interval placements for visitors that need more than
// the fused interval (stealth admissibility checks, full protocol rounds).
//
// Threading: enumerate_blocks() splits [0, world_count) into contiguous
// blocks, runs one engine per block on the shared ThreadPool with a private
// visitor each, and returns the visitors in block order.  Merging the
// per-block accumulators in block order is the caller's job; every
// accumulator in this codebase is either exact integer arithmetic or an
// order-independent min/max, so merged results are bit-identical to a serial
// walk regardless of thread count.

#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "core/interval.h"
#include "sim/engine/sweep.h"
#include "sim/engine/thread_pool.h"
#include "sim/engine/world_codec.h"

namespace arsf::sim::engine {

struct WorldDomain {
  std::vector<Tick> widths;  ///< interval width per slot
  std::vector<Tick> lo_min;  ///< smallest allowed lower bound per slot
  WorldCodec codec;          ///< radix i = number of allowed lower bounds of slot i
  int threshold = 0;         ///< Marzullo threshold n - f
  /// True when every reachable placement of every slot contains the origin —
  /// then all worlds share a common covered point and the engine can use the
  /// O(1) sorted-endpoint fusion instead of the O(n) sweep.
  bool common_point = false;

  /// Clean/no-attack domain: slot i's lower bound ranges over [-w_i, 0], so
  /// every interval contains the pinned true value 0.
  [[nodiscard]] static WorldDomain all_contain_zero(std::span<const Tick> widths, int f);

  /// General domain from explicit per-slot lower-bound ranges (worst-case
  /// search with attacked sensors placed anywhere).
  [[nodiscard]] static WorldDomain from_ranges(std::span<const Tick> widths,
                                               std::span<const TickInterval> lo_ranges, int f);

  [[nodiscard]] std::uint64_t world_count() const noexcept { return codec.world_count(); }

  [[nodiscard]] TickInterval interval_at(std::size_t slot, std::uint64_t digit) const {
    const Tick lo = lo_min[slot] + static_cast<Tick>(digit);
    return TickInterval{lo, lo + widths[slot]};
  }
};

/// Walks worlds [begin, end) of @p domain, invoking
/// visit(index, fused, sweep) for each.  A non-null @p cancel is polled every
/// kCancelCheckStride worlds and aborts the walk with CancelledError; it
/// never changes what a completing walk visits.
template <typename Visitor>
void enumerate_block(const WorldDomain& domain, std::uint64_t begin, std::uint64_t end,
                     Visitor&& visit, const CancelToken* cancel = nullptr) {
  if (begin >= end) return;
  if (cancel != nullptr) cancel->check();
  const std::size_t n = domain.widths.size();

  std::vector<std::uint64_t> digits(n);
  domain.codec.decode(begin, digits);
  std::vector<TickInterval> intervals(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    intervals[slot] = domain.interval_at(slot, digits[slot]);
  }
  IncrementalSweep sweep;
  sweep.reset(intervals);

  std::uint64_t until_check = kCancelCheckStride;
  for (std::uint64_t index = begin;;) {
    const TickInterval fused = domain.common_point
                                   ? sweep.fused_with_common_point(domain.threshold)
                                   : sweep.fused(domain.threshold);
    visit(index, fused, sweep);
    if (++index == end) break;
    if (cancel != nullptr && --until_check == 0) {
      cancel->check();
      until_check = kCancelCheckStride;
    }
    const std::size_t changed = domain.codec.advance(digits);
    for (std::size_t slot = 0; slot < changed; ++slot) {
      sweep.replace(slot, domain.interval_at(slot, digits[slot]));
    }
  }
}

// ---- shared clamp arithmetic ------------------------------------------------
// The run-batched clean lanes (enumerate_clean_block below and the fused
// reducers in accumulators.h) all describe a digit-0 run's fusion interval as
//
//     [ clamp(x, lo_min, lo_max) , clamp(x + w_0, hi_min, hi_max) ]
//
// and collapse per-run work into closed forms over these clamps.  The
// helpers live here so the two lanes cannot drift.

/// Sentinel "infinity" for the clamp bounds: far beyond any reachable tick
/// but small enough that sentinel +- small offsets cannot overflow.
inline constexpr Tick kFarTick = Tick{1} << 40;

[[nodiscard]] constexpr Tick clamp_tick(Tick v, Tick lo, Tick hi) noexcept {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Exact sum of clamp(v, lo, hi) over integer v in [a, b]; requires a <= b
/// and lo <= hi.  All quantities stay far below overflow (|ticks| <=
/// kFarTick, run lengths are world-space radices).
[[nodiscard]] Tick sum_clamp(Tick a, Tick b, Tick lo, Tick hi) noexcept;

/// Exact clean-path statistics over a block of worlds.  All fields merge
/// exactly across blocks (integer sum, min, max).
struct CleanStats {
  std::uint64_t width_sum = 0;  ///< sum of fused widths in ticks
  Tick min_width = std::numeric_limits<Tick>::max();
  Tick max_width = std::numeric_limits<Tick>::min();

  void merge(const CleanStats& other) noexcept {
    width_sum += other.width_sum;
    min_width = std::min(min_width, other.min_width);
    max_width = std::max(max_width, other.max_width);
  }
};

/// Fast lane for common-point domains (every interval contains 0, the fusion
/// region is never empty): accumulates the fused-width sum / min / max over
/// worlds [begin, end) without visiting each world individually.
///
/// Within a digit-0 run only slot 0 moves, so with the *other* slots' sorted
/// endpoints R (lows) and H (highs) maintained incrementally, the fusion
/// interval at lower bound x is
///
///     [ clamp(x, R[t-2], R[t-1]) , clamp(x + w_0, H[n-1-t], H[n-t]) ]
///
/// (out-of-range indices are +-infinity; t = threshold) — each run collapses
/// to a closed-form sum of clamps plus <= 6 candidate evaluations for
/// min/max.  Results are bit-identical to the per-world sweep: the sums are
/// exact integer arithmetic either way.  Throws std::invalid_argument when
/// the domain lacks the common-point guarantee.
[[nodiscard]] CleanStats enumerate_clean_block(const WorldDomain& domain, std::uint64_t begin,
                                               std::uint64_t end,
                                               const CancelToken* cancel = nullptr);

/// Whole-space clean statistics: enumerate_clean_block fan-out over the
/// shared ThreadPool (num_threads 0 = hardware threads, 1 = serial) with a
/// deterministic block-order merge.
[[nodiscard]] CleanStats clean_statistics(const WorldDomain& domain, unsigned num_threads,
                                          const CancelToken* cancel = nullptr);

/// Parallel fan-out: partitions [0, domain.world_count()) into at most
/// @p num_threads contiguous blocks (0 = ThreadPool::default_threads()),
/// constructs one private accumulator per block via @p make_accumulator,
/// uses each as its block's visitor on the shared pool, and returns the
/// accumulators in block order for deterministic merging.
template <typename Factory,
          typename Accumulator = std::invoke_result_t<Factory&>>
std::vector<Accumulator> enumerate_blocks(const WorldDomain& domain, unsigned num_threads,
                                          Factory&& make_accumulator,
                                          const CancelToken* cancel = nullptr) {
  if (num_threads == 0) num_threads = ThreadPool::default_threads();
  const std::vector<IndexBlock> blocks = partition_blocks(domain.world_count(), num_threads);
  std::vector<Accumulator> accumulators;
  accumulators.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) accumulators.push_back(make_accumulator());
  ThreadPool::shared().run(
      blocks.size(),
      [&](std::size_t i) {
        enumerate_block(domain, blocks[i].begin, blocks[i].end, accumulators[i], cancel);
      },
      cancel);
  return accumulators;
}

}  // namespace arsf::sim::engine
