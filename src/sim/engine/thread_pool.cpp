#include "sim/engine/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace arsf::sim::engine {

namespace {

// One run() invocation.  Workers copy the shared_ptr under the pool mutex, so
// a worker that wakes late still drains *its* job's private index counter —
// which is already exhausted — and can never steal indices from a newer job.
struct Job {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t count = 0;
  const CancelToken* cancel = nullptr;  ///< null = not cancellable
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> skipped{false};  ///< a claimed task was not executed
  std::exception_ptr first_error;    ///< guarded by the pool mutex
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::vector<std::thread> workers;

  std::uint64_t generation = 0;           ///< bumped per run(); guarded by mutex
  std::shared_ptr<Job> job;               ///< current job; guarded by mutex
  bool stopping = false;

  void drain(const std::shared_ptr<Job>& current) {
    while (true) {
      const std::size_t index = current->next.fetch_add(1, std::memory_order_relaxed);
      if (index >= current->count) return;
      try {
        // Claim-then-skip (rather than stop claiming) so done still reaches
        // count and the completion wait below can never hang on a cancelled
        // job.
        if (current->cancel != nullptr && current->cancel->cancelled()) {
          current->skipped.store(true, std::memory_order_relaxed);
        } else {
          (*current->task)(index);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!current->first_error) current->first_error = std::current_exception();
      }
      if (current->done.fetch_add(1, std::memory_order_acq_rel) + 1 == current->count) {
        std::lock_guard<std::mutex> lock(mutex);
        work_done.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Job> current;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stopping || generation != seen_generation; });
        if (stopping) return;
        seen_generation = generation;
        current = job;
      }
      if (current) drain(current);
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) : impl_(new Impl) {
  size_ = threads == 0 ? default_threads() : threads;
  impl_->workers.reserve(size_ - 1);
  for (unsigned i = 1; i < size_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::run(std::size_t count, const std::function<void(std::size_t)>& task,
                     const CancelToken* cancel) {
  if (count == 0) return;
  if (count == 1 || impl_->workers.empty()) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        throw CancelledError(cancel->timed_out());
      }
      task(i);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->task = &task;
  job->count = count;
  job->cancel = cancel;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  // The calling thread works too, then waits for the stragglers.
  impl_->drain(job);
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->work_done.wait(
      lock, [&] { return job->done.load(std::memory_order_acquire) == job->count; });
  if (job->first_error) std::rethrow_exception(job->first_error);
  if (job->skipped.load(std::memory_order_relaxed)) {
    throw CancelledError(cancel != nullptr && cancel->timed_out());
  }
}

unsigned ThreadPool::default_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

std::vector<IndexBlock> partition_blocks(std::uint64_t total, unsigned blocks) {
  std::vector<IndexBlock> result;
  if (total == 0 || blocks == 0) return result;
  const std::uint64_t count = blocks;
  const std::uint64_t base = total / count;
  const std::uint64_t remainder = total % count;
  std::uint64_t begin = 0;
  for (std::uint64_t i = 0; i < count && begin < total; ++i) {
    const std::uint64_t size = base + (i < remainder ? 1 : 0);
    if (size == 0) continue;
    result.push_back(IndexBlock{begin, begin + size});
    begin += size;
  }
  return result;
}

}  // namespace arsf::sim::engine
