#include "sim/engine/accumulators.h"

#include <algorithm>
#include <stdexcept>

namespace arsf::sim::engine {

namespace {

/// Casts @p other to the concrete reducer type for merge(); a mismatch means
/// the pass merged reducers that were not clone_empty() partners.
template <typename R>
const R& merge_partner(const WorldReducer& other) {
  const R* typed = dynamic_cast<const R*>(&other);
  if (typed == nullptr) {
    throw std::invalid_argument("WorldReducer::merge: dynamic type mismatch");
  }
  return *typed;
}

/// Invokes piece(a, b, width_at(a), width_at(b - 1)) for maximal half-open
/// integer ranges [a, b) covering the run exactly once each, on which the
/// width is affine (slope -1, 0 or +1).  The run's breakpoints are the four
/// clamp kinks; cutting the lattice at each kink strictly inside the run
/// leaves no kink in any piece's interior.
template <typename Fn>
void for_each_affine_piece(const CleanRun& run, Fn&& piece) {
  const Tick x0 = run.x_first;
  const Tick x1 = run.x_last();
  Tick cuts[4] = {run.lo_min, run.lo_max, run.hi_min - run.w0, run.hi_max - run.w0};
  std::sort(std::begin(cuts), std::end(cuts));
  Tick start = x0;
  for (const Tick cut : cuts) {
    if (cut > start && cut <= x1) {
      piece(start, cut, run.width_at(start), run.width_at(cut - 1));
      start = cut;
    }
  }
  piece(start, x1 + 1, run.width_at(start), run.width_at(x1));
}

}  // namespace

void WorldReducer::accept_clean_run(const CleanRun& run) {
  std::uint64_t index = run.first_index;
  const Tick x_last = run.x_last();
  for (Tick x = run.x_first; x <= x_last; ++x, ++index) {
    accept(index, run.fused_at(x), /*detected=*/false);
  }
}

// ---- ExpectedWidthReducer ---------------------------------------------------

std::unique_ptr<WorldReducer> ExpectedWidthReducer::clone_empty() const {
  return std::make_unique<ExpectedWidthReducer>();
}

void ExpectedWidthReducer::accept(std::uint64_t /*index*/, TickInterval fused, bool detected) {
  Tick width = 0;
  if (fused.is_empty()) {
    ++empty_worlds;
  } else {
    width = fused.width();
  }
  if (detected) ++detected_worlds;
  width_sum += static_cast<std::uint64_t>(width);
  min_width = std::min(min_width, width);
  max_width = std::max(max_width, width);
}

void ExpectedWidthReducer::accept_clean_run(const CleanRun& run) {
  const Tick x0 = run.x_first;
  const Tick x1 = run.x_last();
  // Closed-form width sum, exactly as enumerate_clean_block computes it.
  width_sum += static_cast<std::uint64_t>(
      sum_clamp(x0 + run.w0, x1 + run.w0, run.hi_min, run.hi_max) -
      sum_clamp(x0, x1, run.lo_min, run.lo_max));
  // Extremes lie at the run ends or at breakpoints clamped into the run.
  const Tick candidates[6] = {x0,
                              x1,
                              clamp_tick(run.lo_min, x0, x1),
                              clamp_tick(run.lo_max, x0, x1),
                              clamp_tick(run.hi_min - run.w0, x0, x1),
                              clamp_tick(run.hi_max - run.w0, x0, x1)};
  for (const Tick x : candidates) {
    const Tick width = run.width_at(x);
    min_width = std::min(min_width, width);
    max_width = std::max(max_width, width);
  }
}

void ExpectedWidthReducer::merge(const WorldReducer& other) {
  const auto& o = merge_partner<ExpectedWidthReducer>(other);
  width_sum += o.width_sum;
  min_width = std::min(min_width, o.min_width);
  max_width = std::max(max_width, o.max_width);
  empty_worlds += o.empty_worlds;
  detected_worlds += o.detected_worlds;
}

// ---- WidthHistogramReducer --------------------------------------------------

WidthHistogramReducer::WidthHistogramReducer(std::size_t bins, Tick hi_ticks)
    : counts(bins, 0), hi_ticks_(hi_ticks) {
  if (bins == 0) throw std::invalid_argument("WidthHistogramReducer: bins must be >= 1");
  if (hi_ticks < 1) throw std::invalid_argument("WidthHistogramReducer: hi_ticks must be >= 1");
}

std::size_t WidthHistogramReducer::bin_of(Tick width) const noexcept {
  const auto bin = static_cast<std::size_t>(
      (width * static_cast<Tick>(counts.size())) / hi_ticks_);
  return std::min(bin, counts.size() - 1);
}

std::unique_ptr<WorldReducer> WidthHistogramReducer::clone_empty() const {
  return std::make_unique<WidthHistogramReducer>(counts.size(), hi_ticks_);
}

void WidthHistogramReducer::accept(std::uint64_t /*index*/, TickInterval fused,
                                   bool /*detected*/) {
  ++total_worlds;
  if (fused.is_empty()) {
    ++empty_worlds;
    return;
  }
  ++counts[bin_of(fused.width())];
}

void WidthHistogramReducer::add_width_range(Tick w_lo, Tick w_hi) {
  // Bin i covers widths [ceil(i*hi/B), ceil((i+1)*hi/B) - 1]; the top bin's
  // upper edge is unbounded (bin_of clamps).  Intersect each bin's tick
  // range with [w_lo, w_hi]; each covered width counts once.
  const auto bins = static_cast<Tick>(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const Tick bin_lo = (static_cast<Tick>(i) * hi_ticks_ + bins - 1) / bins;
    const Tick lo = std::max(w_lo, bin_lo);
    Tick hi = w_hi;
    if (i + 1 < counts.size()) {
      const Tick bin_hi = ((static_cast<Tick>(i) + 1) * hi_ticks_ + bins - 1) / bins - 1;
      hi = std::min(hi, bin_hi);
    }
    if (lo <= hi) counts[i] += static_cast<std::uint64_t>(hi - lo + 1);
  }
}

void WidthHistogramReducer::accept_clean_run(const CleanRun& run) {
  total_worlds += run.length;
  // Clean common-point fusions are never empty: fold each affine piece in as
  // either one width repeated (slope 0) or a contiguous width range covered
  // exactly once (slope +-1, |piece| = |width range|).
  for_each_affine_piece(run, [&](Tick a, Tick b, Tick w_first, Tick w_last) {
    if (w_first == w_last) {
      counts[bin_of(w_first)] += static_cast<std::uint64_t>(b - a);
    } else {
      add_width_range(std::min(w_first, w_last), std::max(w_first, w_last));
    }
  });
}

void WidthHistogramReducer::merge(const WorldReducer& other) {
  const auto& o = merge_partner<WidthHistogramReducer>(other);
  if (o.counts.size() != counts.size() || o.hi_ticks_ != hi_ticks_) {
    throw std::invalid_argument("WidthHistogramReducer::merge: configuration mismatch");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += o.counts[i];
  empty_worlds += o.empty_worlds;
  total_worlds += o.total_worlds;
}

// ---- DetectionRateReducer ---------------------------------------------------

std::unique_ptr<WorldReducer> DetectionRateReducer::clone_empty() const {
  return std::make_unique<DetectionRateReducer>();
}

void DetectionRateReducer::accept(std::uint64_t /*index*/, TickInterval fused, bool detected) {
  ++total_worlds;
  if (fused.is_empty()) ++empty_worlds;
  if (detected) ++detected_worlds;
}

void DetectionRateReducer::accept_clean_run(const CleanRun& run) {
  // Clean runs never detect (no attacker) and never fuse empty (common
  // point), so the whole run is one counter bump.
  total_worlds += run.length;
}

void DetectionRateReducer::merge(const WorldReducer& other) {
  const auto& o = merge_partner<DetectionRateReducer>(other);
  detected_worlds += o.detected_worlds;
  empty_worlds += o.empty_worlds;
  total_worlds += o.total_worlds;
}

// ---- WorstCaseReducer -------------------------------------------------------

std::unique_ptr<WorldReducer> WorstCaseReducer::clone_empty() const {
  return std::make_unique<WorstCaseReducer>();
}

void WorstCaseReducer::update(Tick width, std::uint64_t index) noexcept {
  if (width > max_width || (width == max_width && index < argmax_index)) {
    max_width = width;
    argmax_index = index;
  }
}

void WorstCaseReducer::accept(std::uint64_t index, TickInterval fused, bool /*detected*/) {
  update(fused.is_empty() ? Tick{0} : fused.width(), index);
}

void WorstCaseReducer::accept_clean_run(const CleanRun& run) {
  // Per affine piece the maximum sits at a unique end (slope +1: last world
  // of the piece; slope 0 or -1: first), so scanning pieces in ascending x
  // with the (width, -index) rule keeps the run's lowest-index argmax.
  for_each_affine_piece(run, [&](Tick a, Tick b, Tick w_first, Tick w_last) {
    const bool rising = w_last > w_first;
    const Tick x = rising ? b - 1 : a;
    update(rising ? w_last : w_first,
           run.first_index + static_cast<std::uint64_t>(x - run.x_first));
  });
}

void WorstCaseReducer::merge(const WorldReducer& other) {
  const auto& o = merge_partner<WorstCaseReducer>(other);
  update(o.max_width, o.argmax_index);
}

// ---- fused drivers ----------------------------------------------------------

void fused_clean_block(const WorldDomain& domain, std::uint64_t begin, std::uint64_t end,
                       std::span<WorldReducer* const> reducers, const CancelToken* cancel) {
  if (!domain.common_point) {
    throw std::invalid_argument("fused_clean_block: domain lacks a common point");
  }
  if (begin >= end) return;
  if (cancel != nullptr) cancel->check();

  const std::size_t n = domain.widths.size();
  const int t = domain.threshold;
  const Tick w0 = domain.widths[0];

  std::vector<std::uint64_t> digits(n);
  domain.codec.decode(begin, digits);

  // Sorted endpoints of the *rest* (slots 1..n-1), maintained incrementally;
  // the digit-0 run never touches them (same structure as
  // enumerate_clean_block — the clamp bounds below must not drift from it).
  std::vector<TickInterval> rest_intervals(n - 1);
  for (std::size_t slot = 1; slot < n; ++slot) {
    rest_intervals[slot - 1] = domain.interval_at(slot, digits[slot]);
  }
  IncrementalSweep rest;
  rest.reset(rest_intervals);

  const std::uint64_t radix0 = domain.codec.radix(0);
  std::uint64_t index = begin;
  for (;;) {
    const std::span<const Tick> R = rest.sorted_lows();
    const std::span<const Tick> H = rest.sorted_highs();
    CleanRun run;
    run.first_index = index;
    run.length = std::min<std::uint64_t>(radix0 - digits[0], end - index);
    run.x_first = domain.lo_min[0] + static_cast<Tick>(digits[0]);
    run.w0 = w0;
    run.lo_min = t >= 2 ? R[static_cast<std::size_t>(t - 2)] : -kFarTick;
    run.lo_max = t <= static_cast<int>(n) - 1 ? R[static_cast<std::size_t>(t - 1)] : kFarTick;
    run.hi_min =
        t <= static_cast<int>(n) - 1 ? H[n - 1 - static_cast<std::size_t>(t)] : -kFarTick;
    run.hi_max = t >= 2 ? H[n - static_cast<std::size_t>(t)] : kFarTick;
    for (WorldReducer* reducer : reducers) reducer->accept_clean_run(run);

    index += run.length;
    if (index == end) break;
    if (cancel != nullptr) cancel->check();  // per digit-0 run: O(radix) worlds apart
    digits[0] = radix0 - 1;  // jump the odometer to the run's last world...
    const std::size_t changed = domain.codec.advance(digits);  // ...and step over it
    for (std::size_t slot = 1; slot < changed; ++slot) {
      rest.replace(slot - 1, domain.interval_at(slot, digits[slot]));
    }
  }
}

std::size_t FusedPass::add(std::unique_ptr<WorldReducer> reducer) {
  if (reducer == nullptr) throw std::invalid_argument("FusedPass::add: null reducer");
  reducers_.push_back(std::move(reducer));
  return reducers_.size() - 1;
}

void FusedPass::run(const WorldDomain& domain, unsigned num_threads,
                    const CancelToken* cancel) {
  if (reducers_.empty()) throw std::invalid_argument("FusedPass::run: no reducers added");
  if (num_threads == 0) num_threads = ThreadPool::default_threads();
  const std::vector<IndexBlock> blocks = partition_blocks(domain.world_count(), num_threads);

  std::vector<std::vector<std::unique_ptr<WorldReducer>>> per_block(blocks.size());
  for (auto& clones : per_block) {
    clones.reserve(reducers_.size());
    for (const auto& reducer : reducers_) clones.push_back(reducer->clone_empty());
  }

  ThreadPool::shared().run(
      blocks.size(),
      [&](std::size_t i) {
        if (domain.common_point) {
          std::vector<WorldReducer*> raw;
          raw.reserve(per_block[i].size());
          for (const auto& clone : per_block[i]) raw.push_back(clone.get());
          fused_clean_block(domain, blocks[i].begin, blocks[i].end, raw, cancel);
        } else {
          enumerate_block(
              domain, blocks[i].begin, blocks[i].end,
              [&](std::uint64_t index, TickInterval fused, const IncrementalSweep&) {
                for (const auto& clone : per_block[i]) {
                  clone->accept(index, fused, /*detected=*/false);
                }
              },
              cancel);
        }
      },
      cancel);

  // Deterministic block-order merge into the owned reducers; a cancelled run
  // throws out of ThreadPool::run above and never reaches this point.
  for (const auto& clones : per_block) {
    for (std::size_t r = 0; r < reducers_.size(); ++r) reducers_[r]->merge(*clones[r]);
  }
}

}  // namespace arsf::sim::engine
