#pragma once
// Mixed-radix world index codec.
//
// The exhaustive engines (sim/enumerate.h, sim/worstcase.h) walk a product
// space: slot i's placement is one of radix_i choices, so a *world* is a
// digit vector (d_0, ..., d_{n-1}) with d_i in [0, radix_i).  This codec
// gives every world a dense uint64 index (digit 0 is the fastest-moving, the
// same convention as the legacy odometer loops), which is what makes
// arbitrary contiguous block partitioning — and therefore multi-threaded
// fan-out with deterministic block-order merging — possible: a worker seeks
// directly to its block start with decode() and then steps with advance().

#include <cstdint>
#include <span>
#include <vector>

namespace arsf::sim::engine {

class WorldCodec {
 public:
  WorldCodec() = default;
  /// @param radices per-digit radix; every radix must be >= 1 (a radix-1
  ///        digit is a slot with a single fixed placement).  Throws
  ///        std::invalid_argument on a zero radix.
  explicit WorldCodec(std::vector<std::uint64_t> radices);

  [[nodiscard]] std::size_t digits() const noexcept { return radices_.size(); }
  [[nodiscard]] std::uint64_t radix(std::size_t digit) const { return radices_[digit]; }

  /// Positional weight of @p digit: prod of the radices below it, i.e. the
  /// index stride of a +1 step of that digit (weight(0) == 1).  Saturates at
  /// uint64 max together with world_count(); exact whenever !overflowed().
  /// The run-batched lanes use these to recover a world's index in a
  /// DIFFERENT digit order (sim/engine/attacked_lane.h permutes slots so the
  /// widest digit runs fastest, yet must report argmax ties in the original
  /// enumeration order).
  [[nodiscard]] std::uint64_t weight(std::size_t digit) const { return weights_[digit]; }

  /// prod_i radix_i; saturates at uint64 max (see overflowed()).
  [[nodiscard]] std::uint64_t world_count() const noexcept { return count_; }
  [[nodiscard]] bool overflowed() const noexcept { return overflow_; }

  /// Writes the digit vector of @p index (digit 0 fastest).  Requires
  /// out.size() == digits() and index < world_count().
  void decode(std::uint64_t index, std::span<std::uint64_t> out) const;

  /// Inverse of decode().
  [[nodiscard]] std::uint64_t encode(std::span<const std::uint64_t> digits) const;

  /// Odometer step: increments the digit vector in place.  Returns how many
  /// leading digits changed (1 = only digit 0 bumped; k = digits 0..k-2
  /// wrapped to zero and digit k-1 bumped), or 0 when the vector wrapped
  /// around past the last world (all digits are zero again).
  std::size_t advance(std::span<std::uint64_t> digits) const;

  /// prod_i radices[i], saturating at uint64 max — the world-count estimate
  /// without building a codec (sim::world_count and the sweep cost model in
  /// scenario/sweep.h share this one definition).  Zero radices stay zero;
  /// an empty span is the empty product, 1.
  [[nodiscard]] static std::uint64_t saturating_product(
      std::span<const std::uint64_t> radices) noexcept;

 private:
  std::vector<std::uint64_t> radices_;
  std::vector<std::uint64_t> weights_;  ///< prefix products of radices_
  std::uint64_t count_ = 1;
  bool overflow_ = false;
};

}  // namespace arsf::sim::engine
