#include "sim/engine/engine.h"

#include <stdexcept>

namespace arsf::sim::engine {

namespace {

WorldCodec codec_from_ranges(std::span<const TickInterval> lo_ranges) {
  std::vector<std::uint64_t> radices;
  radices.reserve(lo_ranges.size());
  for (const TickInterval& range : lo_ranges) {
    if (range.is_empty()) throw std::invalid_argument("WorldDomain: empty lower-bound range");
    radices.push_back(static_cast<std::uint64_t>(range.width()) + 1);
  }
  return WorldCodec{std::move(radices)};
}

}  // namespace

Tick sum_clamp(Tick a, Tick b, Tick lo, Tick hi) noexcept {
  Tick total = 0;
  const Tick below_end = std::min(b, lo - 1);
  if (below_end >= a) total += (below_end - a + 1) * lo;
  const Tick above_start = std::max(a, hi + 1);
  if (above_start <= b) total += (b - above_start + 1) * hi;
  const Tick mid_start = std::max(a, lo);
  const Tick mid_end = std::min(b, hi);
  if (mid_start <= mid_end) total += (mid_start + mid_end) * (mid_end - mid_start + 1) / 2;
  return total;
}

CleanStats enumerate_clean_block(const WorldDomain& domain, std::uint64_t begin,
                                 std::uint64_t end, const CancelToken* cancel) {
  if (!domain.common_point) {
    throw std::invalid_argument("enumerate_clean_block: domain lacks a common point");
  }
  CleanStats stats;
  if (begin >= end) return stats;
  if (cancel != nullptr) cancel->check();

  const std::size_t n = domain.widths.size();
  const int t = domain.threshold;
  const Tick w0 = domain.widths[0];

  std::vector<std::uint64_t> digits(n);
  domain.codec.decode(begin, digits);

  // Sorted endpoints of the *rest* (slots 1..n-1), maintained incrementally;
  // the digit-0 run never touches them.
  std::vector<TickInterval> rest_intervals(n - 1);
  for (std::size_t slot = 1; slot < n; ++slot) {
    rest_intervals[slot - 1] = domain.interval_at(slot, digits[slot]);
  }
  IncrementalSweep rest;
  rest.reset(rest_intervals);

  const std::uint64_t radix0 = domain.codec.radix(0);
  std::uint64_t index = begin;
  for (;;) {
    // Clamp bounds from the rest's order statistics (R ascending lows,
    // H ascending highs, both of size n-1); out-of-range => +-kFar.
    const std::span<const Tick> R = rest.sorted_lows();
    const std::span<const Tick> H = rest.sorted_highs();
    const Tick A = t >= 2 ? R[static_cast<std::size_t>(t - 2)] : -kFarTick;
    const Tick B = t <= static_cast<int>(n) - 1 ? R[static_cast<std::size_t>(t - 1)] : kFarTick;
    const Tick C =
        t <= static_cast<int>(n) - 1 ? H[n - 1 - static_cast<std::size_t>(t)] : -kFarTick;
    const Tick D = t >= 2 ? H[n - static_cast<std::size_t>(t)] : kFarTick;

    const std::uint64_t run_len = std::min<std::uint64_t>(radix0 - digits[0], end - index);
    const Tick x_first = domain.lo_min[0] + static_cast<Tick>(digits[0]);
    const Tick x_last = x_first + static_cast<Tick>(run_len) - 1;

    // Closed-form width sum over the run: width(x) = hi_f(x) - lo_f(x).
    stats.width_sum += static_cast<std::uint64_t>(
        sum_clamp(x_first + w0, x_last + w0, C, D) - sum_clamp(x_first, x_last, A, B));

    // width(x) is piecewise linear with breakpoints {A, B, C-w0, D-w0}, so
    // its extremes over the run lie at the run ends or at breakpoints
    // clamped into the run.
    const Tick candidates[6] = {x_first,
                                x_last,
                                clamp_tick(A, x_first, x_last),
                                clamp_tick(B, x_first, x_last),
                                clamp_tick(C - w0, x_first, x_last),
                                clamp_tick(D - w0, x_first, x_last)};
    for (const Tick x : candidates) {
      const Tick width = clamp_tick(x + w0, C, D) - clamp_tick(x, A, B);
      stats.min_width = std::min(stats.min_width, width);
      stats.max_width = std::max(stats.max_width, width);
    }

    index += run_len;
    if (index == end) break;
    if (cancel != nullptr) cancel->check();  // per digit-0 run: O(radix) worlds apart
    digits[0] = radix0 - 1;  // jump the odometer to the run's last world...
    const std::size_t changed = domain.codec.advance(digits);  // ...and step over it
    for (std::size_t slot = 1; slot < changed; ++slot) {
      rest.replace(slot - 1, domain.interval_at(slot, digits[slot]));
    }
  }
  return stats;
}

CleanStats clean_statistics(const WorldDomain& domain, unsigned num_threads,
                            const CancelToken* cancel) {
  if (num_threads == 0) num_threads = ThreadPool::default_threads();
  const std::vector<IndexBlock> blocks = partition_blocks(domain.world_count(), num_threads);
  std::vector<CleanStats> per_block(blocks.size());
  ThreadPool::shared().run(
      blocks.size(),
      [&](std::size_t i) {
        per_block[i] = enumerate_clean_block(domain, blocks[i].begin, blocks[i].end, cancel);
      },
      cancel);
  CleanStats merged;
  for (const CleanStats& block : per_block) merged.merge(block);
  return merged;
}

WorldDomain WorldDomain::all_contain_zero(std::span<const Tick> widths, int f) {
  WorldDomain domain;
  domain.widths.assign(widths.begin(), widths.end());
  domain.lo_min.reserve(widths.size());
  std::vector<std::uint64_t> radices;
  radices.reserve(widths.size());
  for (const Tick w : widths) {
    if (w < 0) throw std::invalid_argument("WorldDomain: negative width");
    domain.lo_min.push_back(-w);
    radices.push_back(static_cast<std::uint64_t>(w) + 1);
  }
  domain.codec = WorldCodec{std::move(radices)};
  domain.threshold = static_cast<int>(widths.size()) - f;
  if (domain.threshold < 1 || domain.threshold > static_cast<int>(widths.size())) {
    throw std::invalid_argument("WorldDomain: require 0 <= f < n");
  }
  domain.common_point = true;
  return domain;
}

WorldDomain WorldDomain::from_ranges(std::span<const Tick> widths,
                                     std::span<const TickInterval> lo_ranges, int f) {
  if (widths.size() != lo_ranges.size()) {
    throw std::invalid_argument("WorldDomain: widths/lo_ranges size mismatch");
  }
  WorldDomain domain;
  domain.widths.assign(widths.begin(), widths.end());
  domain.lo_min.reserve(widths.size());
  domain.codec = codec_from_ranges(lo_ranges);
  domain.threshold = static_cast<int>(widths.size()) - f;
  if (domain.threshold < 1 || domain.threshold > static_cast<int>(widths.size())) {
    throw std::invalid_argument("WorldDomain: require 0 <= f < n");
  }
  // Every placement of slot i contains 0 iff the whole lower-bound range
  // keeps the interval straddling the origin.
  domain.common_point = true;
  for (std::size_t i = 0; i < lo_ranges.size(); ++i) {
    domain.lo_min.push_back(lo_ranges[i].lo);
    if (lo_ranges[i].lo < -widths[i] || lo_ranges[i].hi > 0) domain.common_point = false;
  }
  return domain;
}

}  // namespace arsf::sim::engine
