#include "sim/engine/sweep.h"

#include <algorithm>
#include <cassert>

namespace arsf::sim::engine {

void IncrementalSweep::reset(std::span<const TickInterval> intervals) {
  intervals_.assign(intervals.begin(), intervals.end());
  lows_.resize(intervals_.size());
  highs_.resize(intervals_.size());
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    lows_[i] = intervals_[i].lo;
    highs_[i] = intervals_[i].hi;
  }
  std::sort(lows_.begin(), lows_.end());
  std::sort(highs_.begin(), highs_.end());
}

void IncrementalSweep::bump(std::vector<Tick>& arr, Tick old_value, Tick new_value) noexcept {
  auto it = std::lower_bound(arr.begin(), arr.end(), old_value);
  assert(it != arr.end() && *it == old_value);
  if (new_value >= old_value) {
    while (it + 1 != arr.end() && *(it + 1) < new_value) {
      *it = *(it + 1);
      ++it;
    }
  } else {
    while (it != arr.begin() && *(it - 1) > new_value) {
      *it = *(it - 1);
      --it;
    }
  }
  *it = new_value;
}

void IncrementalSweep::coverage_segments(int threshold, std::vector<TickInterval>& out) const {
  // Two-pointer merge of the sorted endpoint arrays, starts before ends at
  // equal coordinates (closed intervals touch).  The count rises through
  // `threshold` exactly where a maximal >= threshold segment opens and drops
  // from it where one closes; lows at a coordinate are all processed before
  // highs there, so two produced segments can never touch.
  const std::size_t n = lows_.size();
  std::size_t i = 0;
  std::size_t j = 0;
  int count = 0;
  Tick open = 0;
  while (j < n) {
    if (i < n && lows_[i] <= highs_[j]) {
      if (++count == threshold) open = lows_[i];
      ++i;
    } else {
      if (count == threshold) out.push_back(TickInterval{open, highs_[j]});
      --count;
      ++j;
    }
  }
}

void IncrementalSweep::replace(std::size_t slot, TickInterval next) {
  assert(slot < intervals_.size());
  const TickInterval previous = intervals_[slot];
  intervals_[slot] = next;
  if (previous.lo != next.lo) bump(lows_, previous.lo, next.lo);
  if (previous.hi != next.hi) bump(highs_, previous.hi, next.hi);
}

}  // namespace arsf::sim::engine
