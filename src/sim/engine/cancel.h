#pragma once
// Cooperative cancellation + deadlines for the enumeration engines.
//
// A CancelToken is an atomic flag plus an optional steady-clock deadline.
// Engines never poll it per world — they check at block granularity (pool
// task startup, per digit-0 run, per Monte-Carlo round, per subset class, or
// every few tens of thousands of worlds inside one block), which keeps the
// hot loops branch-free while bounding the reaction latency to well under a
// deadline's own magnitude on any realistic block size.
//
// The cardinal invariant (see src/sim/engine/README.md): cancellation only
// ever ABORTS work by throwing CancelledError — it never alters a value that
// a completing run would produce.  A run that completes under a cancel token
// is therefore bit-identical to an uncancelled run; a run that does not
// complete surfaces CancelledError and produces no partial data.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace arsf::sim::engine {

/// Thrown by CancelToken::check() (and by ThreadPool::run when a cancelled
/// job skipped tasks).  @p timed_out distinguishes a deadline expiry from an
/// explicit cancel() so callers can report `timed_out` vs `cancelled`.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(bool timed_out)
      : std::runtime_error(timed_out ? "deadline exceeded" : "cancelled"),
        timed_out_(timed_out) {}

  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

 private:
  bool timed_out_;
};

/// Shared cancellation state.  Thread-safe: any thread may cancel(), any
/// worker may poll.  Non-copyable — engines receive `const CancelToken*`
/// (nullptr = not cancellable, the default everywhere).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  /// Child token: trips when either this token or @p parent does.  The
  /// Runner uses this to combine a batch-wide cancel with a per-scenario
  /// deadline — a parent cancel shows up as cancelled (not timed_out) unless
  /// the parent itself timed out.  @p parent must outlive this token.
  explicit CancelToken(const CancelToken* parent) noexcept : parent_(parent) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Explicit cancellation (not a timeout).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms (or re-arms) the deadline; expiry latches the token cancelled with
  /// timed_out() == true at the next poll.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }
  void set_deadline_after(std::chrono::milliseconds budget) noexcept {
    set_deadline(Clock::now() + budget);
  }

  /// Polls the flag, then the deadline (latching expiry).  Engines call this
  /// at block granularity, never per world.
  [[nodiscard]] bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != kNoDeadline &&
        Clock::now().time_since_epoch().count() >= deadline) {
      timed_out_.store(true, std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    if (parent_ != nullptr && parent_->cancelled()) {
      if (parent_->timed_out()) timed_out_.store(true, std::memory_order_relaxed);
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True iff cancellation was caused by deadline expiry.
  [[nodiscard]] bool timed_out() const noexcept {
    return timed_out_.load(std::memory_order_relaxed);
  }

  /// Throws CancelledError when cancelled; the engines' standard check.
  void check() const {
    if (cancelled()) throw CancelledError(timed_out());
  }

 private:
  static constexpr std::int64_t kNoDeadline = std::numeric_limits<std::int64_t>::max();

  const CancelToken* parent_ = nullptr;
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> timed_out_{false};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

/// How many loop iterations the intra-block checks amortise one poll over.
/// Small enough that even a ~1 ms budget is honoured within a fraction of
/// itself on commodity hardware; large enough to keep the poll invisible in
/// profiles.
inline constexpr std::uint64_t kCancelCheckStride = 32 * 1024;

}  // namespace arsf::sim::engine
