#pragma once
// Saturating uint64 arithmetic shared by the cost models and subset search.
//
// Grid sizes, world counts and subset counts in this codebase are all
// "astronomical means saturate, never wrap": a C(n, fa) or axis product that
// overflows uint64 must compare as "huge", not as a small wrapped value that
// a chunk scheduler or a prune counter would then misread.  One home for the
// helpers keeps the overflow rules from drifting between the sweep cost
// model (scenario/sweep.cpp) and the engine (subset_search.cpp);
// WorldCodec::saturating_product stays separate because it also tracks the
// zero-radix-after-overflow case.

#include <algorithm>
#include <cstdint>
#include <limits>

namespace arsf::sim::engine {

inline constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

[[nodiscard]] constexpr std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) noexcept {
  return a > kSaturated - b ? kSaturated : a + b;
}

[[nodiscard]] constexpr std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return a > kSaturated / b ? kSaturated : a * b;
}

/// C(n, k) saturating at uint64 max; 0 when k > n.
[[nodiscard]] constexpr std::uint64_t saturating_binomial(std::uint64_t n,
                                                          std::uint64_t k) noexcept {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    if (result > kSaturated / (n - k + i)) return kSaturated;
    result = result * (n - k + i) / i;
  }
  return result;
}

}  // namespace arsf::sim::engine
