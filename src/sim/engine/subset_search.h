#pragma once
// Branch-and-bound subset search with equal-width symmetry dedup — the outer
// loop of the global worst case |Swc_fa| (paper, Theorem 4).
//
// worst_case_over_sets historically walked every fa-subset of sensors with a
// flat bitmask loop; once the per-set search went run-batched (PR 4,
// attacked_lane.h), that C(n, fa) outer loop became the dominant cost and
// capped exhaustive Theorem-4 studies at n ≈ 12–14.  This module replaces it
// with a pruned search over *equivalence classes* of subsets:
//
//   * Symmetry dedup.  The per-set worst case depends only on the MULTISET
//     of attacked widths (permuting equal-width sensors between the attacked
//     and clean roles permutes isomorphic placement domains), so the search
//     canonicalizes each subset to its attacked-width multiset, evaluates
//     one representative per class, and multiplies the class out.  On inputs
//     with repeated widths this alone collapses C(n, fa) to the number of
//     distinct multisets.
//   * Admissible optimistic bound.  Every endpoint of the fused interval is
//     a point covered by >= t = n - f intervals, and an interval can only
//     cover points within its REACH from the pinned origin: a clean sensor
//     of width w reaches |p| <= w (its lower bound ranges over [-w, 0]), an
//     attacked one reaches |p| <= W + w (lower bound in [-W - w, W], W the
//     largest width — the same coverage-hull reasoning attacked_lane.h scans
//     with).  Hence fused_hi <= t-th largest reach, fused_lo >= its
//     negation, and
//
//         bound(A) = 2 * (t-th largest of {w_i : i clean} ∪ {W + w_a : a in A})
//
//     never undershoots the per-set oracle, stealth constraint or not (the
//     bound simply ignores it; dropping constraints only raises the max).
//     See src/sim/engine/README.md for the full derivation and the prefix
//     relaxation.
//   * Branch and bound.  Classes are enumerated as a prefix tree over the
//     distinct widths in ascending order (counts per width chosen largest
//     first, so the first leaf is Theorem 4's attack-the-smallest-widths
//     class — the natural incumbent seed).  A prefix with r picks left
//     relaxes the bound over its best completion (r largest remaining picks
//     when t <= fa, r smallest when t > fa — attacked reaches always
//     dominate clean ones), so any subtree whose relaxed bound cannot beat
//     the incumbent is cut without enumeration.  Surviving classes are
//     evaluated bound-descending on the engine ThreadPool against a shared
//     incumbent; a deterministic post-pass over the recorded per-class
//     values reproduces the flat loop's answer — max width AND the reported
//     best set (lowest original bitmask among maximisers) — bit-identically
//     for every thread count, because a class is only ever skipped when it
//     provably cannot supply either.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/config.h"
#include "sim/engine/cancel.h"

namespace arsf::sim::engine {

/// Counters from one pruned subset search.  subsets_total / classes_total
/// depend only on the input; the evaluated/pruned splits depend on evaluation
/// timing and are deterministic only for num_threads == 1.
struct SubsetSearchStats {
  std::uint64_t subsets_total = 0;     ///< C(n, fa), saturating at uint64 max
  std::uint64_t classes_total = 0;     ///< distinct attacked-width multisets
  std::uint64_t classes_evaluated = 0; ///< representatives actually searched
  std::uint64_t classes_pruned = 0;    ///< classes skipped via the bound
  std::uint64_t subsets_pruned = 0;    ///< subsets inside pruned classes/subtrees (saturating)
  std::uint64_t tree_nodes = 0;        ///< prefix-tree nodes visited
  std::uint64_t branches_pruned = 0;   ///< subtrees cut during enumeration
};

/// Admissible optimistic bound on the per-set worst case: twice the t-th
/// largest reach (see file comment), t = clamp(n - f, 1, n).  Never below
/// worst_case_fusion({widths, f, attacked, *}).max_width for either stealth
/// setting; tests/test_subset_search.cpp holds this as a property so future
/// tightening cannot silently break admissibility.  @p attacked must be
/// sorted ascending.  Returns 0 for n == 0.
[[nodiscard]] Tick over_sets_optimistic_bound(std::span<const Tick> widths,
                                              std::span<const SensorId> attacked, int f);

/// Outcome of the class search; best_mask is meaningful iff found.
struct SubsetSearchResult {
  Tick max_width = -1;           ///< -1 when every evaluated class fused empty
  std::uint64_t best_mask = 0;   ///< lowest subset bitmask achieving max_width
  bool found = false;            ///< true iff max_width >= 0
};

/// Per-representative evaluator: the per-set worst-case max width for the
/// (sorted ascending) attacked ids, running its engine with @p num_threads.
/// Must be a pure function of the attacked-width multiset (the equal-width
/// symmetry the dedup relies on) and thread-count invariant — both hold for
/// sim::worst_case_fusion / worst_case_fusion_fast.
using SubsetEvaluator =
    std::function<Tick(const std::vector<SensorId>& attacked, unsigned num_threads)>;

/// Branch-and-bound maximum of evaluate() over every fa-subset of sensors.
/// Reproduces the flat bitmask loop's result exactly: max value, and the
/// lowest mask among maximisers (the class representative masks pick the
/// smallest ids per width, which realises each class's minimal mask).
/// @p num_threads (0 = hardware threads, 1 = serial) splits between outer
/// and inner parallelism: with more surviving classes than workers the
/// classes fan out with serial per-set engines; otherwise — the common
/// regime once dedup collapses the lattice — classes run sequentially and
/// each per-set search gets the full fan-out.  Results are bit-identical
/// for every thread count either way (the evaluator must be).  Throws
/// std::invalid_argument when fa > n ("no fa-subset exists") or n > 63
/// (subset bitmasks are uint64).  @p stats, when non-null, receives the
/// search counters.  A non-null @p cancel is polled per prefix-tree node and
/// before every class evaluation (pass the same token into the evaluator's
/// engine for intra-class responsiveness) and aborts with CancelledError.
[[nodiscard]] SubsetSearchResult subset_search_over_sets(std::span<const Tick> widths, int f,
                                                         std::size_t fa,
                                                         const SubsetEvaluator& evaluate,
                                                         unsigned num_threads,
                                                         SubsetSearchStats* stats = nullptr,
                                                         const CancelToken* cancel = nullptr);

}  // namespace arsf::sim::engine
