#include "sim/engine/subset_search.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "sim/engine/saturating.h"
#include "sim/engine/thread_pool.h"

namespace arsf::sim::engine {

namespace {

/// Sensors bucketed by distinct width, widths ascending, ids ascending
/// within a bucket (the order that realises each class's minimal mask).
struct WidthGroup {
  Tick width = 0;
  std::vector<SensorId> ids;
};

std::vector<WidthGroup> group_by_width(std::span<const Tick> widths) {
  std::vector<WidthGroup> groups;
  std::vector<std::size_t> order(widths.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return widths[a] < widths[b]; });
  for (const std::size_t id : order) {
    if (groups.empty() || groups.back().width != widths[id]) {
      groups.push_back(WidthGroup{widths[id], {}});
    }
    groups.back().ids.push_back(static_cast<SensorId>(id));
  }
  // stable_sort keeps equal widths in id order, so each bucket is ascending.
  return groups;
}

/// One equivalence class: counts[j] sensors of groups[j].width attacked.
struct SubsetClass {
  std::vector<std::uint32_t> counts;
  std::uint64_t min_mask = 0;   ///< smallest ids per group => lowest member mask
  std::uint64_t subsets = 0;    ///< prod C(mult_j, counts_j), saturating
  Tick bound = 0;               ///< over_sets_optimistic_bound of any member
  Tick value = -1;              ///< per-set result once evaluated
  bool evaluated = false;
};

/// Clamped Marzullo threshold (n - f); the order statistic the bound takes.
int bound_threshold(std::size_t n, int f) noexcept {
  const auto t = static_cast<std::int64_t>(n) - f;
  if (t < 1) return 1;
  if (t > static_cast<std::int64_t>(n)) return static_cast<int>(n);
  return static_cast<int>(t);
}

/// 2 * t-th largest of @p reaches (destructive).
Tick bound_from_reaches(std::vector<Tick>& reaches, int t) {
  auto nth = reaches.begin() + (t - 1);
  std::nth_element(reaches.begin(), nth, reaches.end(), std::greater<Tick>{});
  return 2 * *nth;
}

/// Number of count-vectors c_j..c_{K-1} with 0 <= c_j <= mult_j summing to
/// @p remaining — the classes below one prefix node, saturating.
std::uint64_t completions_below(const std::vector<WidthGroup>& groups, std::size_t next,
                                std::size_t remaining) {
  std::vector<std::uint64_t> ways(remaining + 1, 0);
  ways[0] = 1;
  for (std::size_t j = next; j < groups.size(); ++j) {
    const std::size_t mult = groups[j].ids.size();
    std::vector<std::uint64_t> merged(remaining + 1, 0);
    for (std::size_t sum = 0; sum <= remaining; ++sum) {
      if (ways[sum] == 0) continue;
      for (std::size_t c = 0; c <= mult && sum + c <= remaining; ++c) {
        merged[sum + c] = saturating_add(merged[sum + c], ways[sum]);
      }
    }
    ways = std::move(merged);
  }
  return ways[remaining];
}

/// Shared incumbent: best evaluated value and the lowest mask achieving it.
struct Incumbent {
  Tick value = -1;
  std::uint64_t mask = kSaturated;

  void offer(Tick value_in, std::uint64_t mask_in) noexcept {
    if (value_in > value || (value_in == value && mask_in < mask)) {
      value = value_in;
      mask = mask_in;
    }
  }
  /// True when the class provably supplies neither a larger maximum nor a
  /// lower reported mask: its bound falls short of the incumbent value, or
  /// ties it with a worse mask than an already-evaluated achiever.  Sound
  /// for the final answer regardless of timing, because value <= incumbent
  /// <= final max at every moment.
  [[nodiscard]] bool dominates(Tick bound, std::uint64_t mask_in) const noexcept {
    if (bound < value) return true;
    return bound == value && value >= 0 && mask_in > mask;
  }
};

}  // namespace

Tick over_sets_optimistic_bound(std::span<const Tick> widths,
                                std::span<const SensorId> attacked, int f) {
  const std::size_t n = widths.size();
  if (n == 0) return 0;
  Tick max_width = 0;
  for (const Tick w : widths) max_width = std::max(max_width, w);

  std::vector<Tick> reaches;
  reaches.reserve(n);
  for (SensorId id = 0; id < n; ++id) {
    const bool is_attacked = std::binary_search(attacked.begin(), attacked.end(), id);
    reaches.push_back(is_attacked ? max_width + widths[id] : widths[id]);
  }
  return bound_from_reaches(reaches, bound_threshold(n, f));
}

SubsetSearchResult subset_search_over_sets(std::span<const Tick> widths, int f, std::size_t fa,
                                           const SubsetEvaluator& evaluate,
                                           unsigned num_threads, SubsetSearchStats* stats_out,
                                           const CancelToken* cancel) {
  const std::size_t n = widths.size();
  if (fa > n) {
    throw std::invalid_argument("subset_search_over_sets: fa (" + std::to_string(fa) +
                                ") exceeds the number of sensors (" + std::to_string(n) +
                                "); no fa-subset exists");
  }
  if (n > 63) {
    throw std::invalid_argument("subset_search_over_sets: subset bitmasks support at most "
                                "63 sensors");
  }
  if (num_threads == 0) num_threads = ThreadPool::default_threads();

  SubsetSearchStats stats;
  stats.subsets_total = saturating_binomial(n, fa);
  SubsetSearchResult result;
  if (n == 0) {
    // One empty subset; mirror the flat loop: evaluate it, report no set
    // unless it fused non-empty (it cannot — there are no sensors).
    const Tick value = evaluate({}, num_threads);
    stats.classes_total = stats.classes_evaluated = 1;
    result.max_width = value;
    result.found = value >= 0;
    if (stats_out != nullptr) *stats_out = stats;
    return result;
  }

  const std::vector<WidthGroup> groups = group_by_width(widths);
  const std::size_t group_count = groups.size();
  Tick max_width_all = groups.back().width;
  const int t = bound_threshold(n, f);

  // Suffix sensor counts: how many picks groups j.. can still absorb.
  std::vector<std::size_t> suffix_mult(group_count + 1, 0);
  for (std::size_t j = group_count; j-- > 0;) {
    suffix_mult[j] = suffix_mult[j + 1] + groups[j].ids.size();
  }

  const auto class_of = [&](const std::vector<std::uint32_t>& counts) {
    SubsetClass cls;
    cls.counts = counts;
    cls.subsets = 1;
    std::vector<Tick> reaches;
    reaches.reserve(n);
    for (std::size_t j = 0; j < group_count; ++j) {
      const std::vector<SensorId>& ids = groups[j].ids;
      for (std::size_t k = 0; k < counts[j]; ++k) {
        cls.min_mask |= std::uint64_t{1} << ids[k];
        reaches.push_back(max_width_all + groups[j].width);
      }
      for (std::size_t k = counts[j]; k < ids.size(); ++k) reaches.push_back(groups[j].width);
      cls.subsets = saturating_mul(cls.subsets, saturating_binomial(ids.size(), counts[j]));
    }
    cls.bound = bound_from_reaches(reaches, t);
    return cls;
  };

  const auto representative = [&](const SubsetClass& cls) {
    std::vector<SensorId> attacked;
    attacked.reserve(fa);
    for (std::size_t j = 0; j < group_count; ++j) {
      attacked.insert(attacked.end(), groups[j].ids.begin(),
                      groups[j].ids.begin() + cls.counts[j]);
    }
    std::sort(attacked.begin(), attacked.end());
    return attacked;
  };

  // ---- incumbent seed: Theorem 4's attack-the-smallest-widths class -------
  // (also the prefix tree's first leaf, so its branch can never be cut).
  std::vector<std::uint32_t> seed_counts(group_count, 0);
  {
    std::size_t remaining = fa;
    for (std::size_t j = 0; j < group_count && remaining > 0; ++j) {
      seed_counts[j] = static_cast<std::uint32_t>(std::min(groups[j].ids.size(), remaining));
      remaining -= seed_counts[j];
    }
  }
  if (cancel != nullptr) cancel->check();
  SubsetClass seed = class_of(seed_counts);
  seed.value = evaluate(representative(seed), num_threads);
  seed.evaluated = true;

  Incumbent incumbent;
  incumbent.offer(seed.value, seed.min_mask);
  std::mutex incumbent_mutex;

  // ---- prefix-tree enumeration with branch-and-bound -----------------------
  // Counts per group chosen largest-first over ascending widths, so classes
  // come out Theorem-4-most-plausible first; a prefix with r picks left is
  // bounded by its best completion: attacked reaches (W + w) dominate every
  // clean reach, so when t <= fa the t-th largest reach is an attacked one
  // (maximised by the r LARGEST remaining widths) and otherwise it is the
  // (t - fa)-th largest clean width (maximised by removing the r SMALLEST).
  const auto prefix_bound = [&](const std::vector<std::uint32_t>& counts, std::size_t next,
                                std::size_t remaining) {
    std::vector<Tick> reaches;
    reaches.reserve(n);
    for (std::size_t j = 0; j < next; ++j) {
      for (std::size_t k = 0; k < counts[j]; ++k) {
        reaches.push_back(max_width_all + groups[j].width);
      }
      for (std::size_t k = counts[j]; k < groups[j].ids.size(); ++k) {
        reaches.push_back(groups[j].width);
      }
    }
    // Optimistic completion over groups[next..]: walk the undecided sensors
    // in the favourable direction, attacking the first `remaining`.
    std::size_t budget = remaining;
    const bool attack_largest = t <= static_cast<int>(fa);
    const auto take = [&](std::size_t j) {
      const std::size_t mult = groups[j].ids.size();
      const std::size_t attack_here = std::min(budget, mult);
      budget -= attack_here;
      for (std::size_t k = 0; k < attack_here; ++k) {
        reaches.push_back(max_width_all + groups[j].width);
      }
      for (std::size_t k = attack_here; k < mult; ++k) reaches.push_back(groups[j].width);
    };
    if (attack_largest) {
      for (std::size_t j = group_count; j-- > next;) take(j);
    } else {
      for (std::size_t j = next; j < group_count; ++j) take(j);
    }
    return bound_from_reaches(reaches, t);
  };

  std::vector<SubsetClass> classes;
  std::vector<std::uint32_t> counts(group_count, 0);
  const auto enumerate = [&](const auto& self, std::size_t j, std::size_t remaining) -> void {
    ++stats.tree_nodes;
    if (cancel != nullptr && (stats.tree_nodes % 1024) == 0) cancel->check();
    if (j == group_count) {
      SubsetClass cls = class_of(counts);
      if (cls.min_mask == seed.min_mask) {
        classes.push_back(seed);  // pre-evaluated; keep its slot for the post-pass
      } else {
        classes.push_back(std::move(cls));
      }
      return;
    }
    if (j > 0 && remaining > 0) {
      // Cut the whole subtree when even its most favourable completion
      // cannot beat the incumbent.  The comparison must stay STRICT: class
      // masks are not ordered relative to the seed's (ids are grouped by
      // width, not by index — e.g. widths {5, 1} seed the id-1 class whose
      // mask exceeds the id-0 class's), so a class that merely TIES the
      // incumbent may still carry a lower mask and must reach the
      // claim-time check, where the mask-aware tie rule handles it.
      const Tick bound = prefix_bound(counts, j, remaining);
      if (bound < incumbent.value) {
        ++stats.branches_pruned;
        const std::uint64_t below = completions_below(groups, j, remaining);
        stats.classes_pruned = saturating_add(stats.classes_pruned, below);
        std::uint64_t prefix_ways = 1;
        for (std::size_t p = 0; p < j; ++p) {
          prefix_ways = saturating_mul(prefix_ways, saturating_binomial(groups[p].ids.size(), counts[p]));
        }
        stats.subsets_pruned = saturating_add(
            stats.subsets_pruned,
            saturating_mul(prefix_ways, saturating_binomial(suffix_mult[j], remaining)));
        return;
      }
    }
    const std::size_t mult = groups[j].ids.size();
    const std::size_t high = std::min(mult, remaining);
    const std::size_t low = remaining > suffix_mult[j + 1] ? remaining - suffix_mult[j + 1] : 0;
    for (std::size_t c = high + 1; c-- > low;) {
      counts[j] = static_cast<std::uint32_t>(c);
      self(self, j + 1, remaining - c);
    }
    counts[j] = 0;
  };
  enumerate(enumerate, 0, fa);
  stats.classes_total = saturating_add(stats.classes_pruned, classes.size());

  // ---- shared-incumbent fan-out over the surviving classes ----------------
  // Highest bound first (ties: lowest mask) so the incumbent peaks early;
  // workers re-check the incumbent at claim time and skip dominated classes.
  std::vector<std::size_t> order(classes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (classes[a].bound != classes[b].bound) return classes[a].bound > classes[b].bound;
    return classes[a].min_mask < classes[b].min_mask;
  });

  const auto run_class = [&](std::size_t i, unsigned per_class_threads) {
    SubsetClass& cls = classes[order[i]];
    if (cls.evaluated) return;  // the seed
    if (cancel != nullptr) cancel->check();
    {
      const std::lock_guard<std::mutex> lock{incumbent_mutex};
      if (incumbent.dominates(cls.bound, cls.min_mask)) return;
    }
    const Tick value = evaluate(representative(cls), per_class_threads);
    cls.value = value;
    cls.evaluated = true;
    const std::lock_guard<std::mutex> lock{incumbent_mutex};
    incumbent.offer(value, cls.min_mask);
  };

  // The evaluator is thread-count invariant, so the split between outer
  // (class) and inner (per-set) parallelism is a pure wall-clock choice.
  // With no more classes than workers — the common regime once dedup has
  // collapsed the lattice — outer fan-out would idle most of the pool, so
  // run classes sequentially and hand each per-set search the full fan-out
  // (which also means every claim sees a fully up-to-date incumbent).
  if (num_threads == 1 || classes.size() <= num_threads) {
    for (std::size_t i = 0; i < classes.size(); ++i) run_class(i, num_threads);
  } else if (num_threads >= ThreadPool::shared().size()) {
    ThreadPool::shared().run(classes.size(), [&](std::size_t i) { run_class(i, 1); }, cancel);
  } else {
    ThreadPool pool{num_threads};
    pool.run(classes.size(), [&](std::size_t i) { run_class(i, 1); }, cancel);
  }

  // ---- deterministic post-pass ---------------------------------------------
  // Only evaluated classes can carry the answer (a skipped class was proven
  // dominated at skip time, and the incumbent never decreases), so scanning
  // the recorded values reproduces the flat loop's max and lowest-mask
  // argmax independent of which classes any particular run pruned.
  for (const SubsetClass& cls : classes) {
    if (!cls.evaluated) {
      ++stats.classes_pruned;
      stats.subsets_pruned = saturating_add(stats.subsets_pruned, cls.subsets);
      continue;
    }
    ++stats.classes_evaluated;
    if (cls.value > result.max_width ||
        (cls.value == result.max_width && cls.value >= 0 && cls.min_mask < result.best_mask)) {
      result.max_width = cls.value;
      result.best_mask = cls.min_mask;
    }
  }
  result.found = result.max_width >= 0;
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

}  // namespace arsf::sim::engine
