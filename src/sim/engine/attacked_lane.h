#pragma once
// Run-batched fast lane for the worst-case (attacked) enumeration domain.
//
// The clean fast lane (engine.h, enumerate_clean_block) collapses every
// digit-0 run to closed form because all intervals share a common covered
// point.  The worst-case domain breaks that property — attacked slots may
// sit anywhere in [-W - w, W] — but only GLOBALLY: within one digit run a
// single interval [x, x + w] moves while the rest stay fixed, so the fused
// interval is still a closed-form function of x.  With the rest's coverage
// structure (one O(n) pass over the IncrementalSweep's sorted endpoints),
//
//   cov(p) >= t  <=>  cov_rest(p) >= t  OR  (cov_rest(p) >= t-1 AND p in M)
//
// for M = [x, x + w], so with H = hull of the rest's >= t region and
// S_1..S_m the maximal segments of its >= t-1 region,
//
//   fused_lo(x) = min(H.lo, max(x, S_j.lo)),   j = first segment with hi >= x
//   fused_hi(x) = max(H.hi, min(x + w, S_k.hi)), k = last segment with lo <= x+w
//
// — both piecewise linear in x with breakpoints only where j or k change.
// Each run therefore collapses to O(m) pieces; within a piece the stealth
// constraints (every attacked interval must intersect the fused interval)
// reduce to an x-range and the width maximum lies on one of <= 6 candidate
// points.  Results are bit-identical to the per-world oracle scan
// (sim/worstcase.h): exact integer arithmetic, and the argmax is reported as
// the lowest ORIGINAL world index achieving the maximum width.
//
// Because the run digit is free under that merge rule, build() permutes the
// slots so the LARGEST radix — for attacked sets, typically an attacked
// slot, whose placement range is ~3x any clean slot's — runs fastest,
// maximising the number of worlds amortised per closed-form piece scan.
// WorldCodec::weight() maps digits back to original-order indices so the
// tie-break never sees the permutation.

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/interval.h"
#include "sim/engine/engine.h"

namespace arsf::sim::engine {

/// The permuted enumeration domain plus everything the block walker needs to
/// report results in original slot/index order.
struct WorstCaseLane {
  WorldDomain domain;                      ///< permuted: the run slot is digit 0
  std::vector<std::size_t> orig_slot;      ///< permuted slot -> original slot
  std::vector<std::uint64_t> orig_weight;  ///< permuted slot -> original codec weight
  std::vector<char> attacked;              ///< per permuted slot (1 = attacked)
  bool require_undetected = true;

  /// @p widths / @p lo_ranges / @p f as WorldDomain::from_ranges;
  /// @p attacked_ids must be sorted original slot ids.
  [[nodiscard]] static WorstCaseLane build(std::span<const Tick> widths,
                                           std::span<const TickInterval> lo_ranges, int f,
                                           std::span<const SensorId> attacked_ids,
                                           bool require_undetected);
};

/// Best configuration found over a set of worlds; merges deterministically
/// (greater width wins, ties keep the lower original world index).
struct WorstCaseBest {
  Tick max_width = -1;              ///< -1 when every world fused empty / failed stealth
  std::uint64_t world_index = 0;    ///< ORIGINAL-order index of argmax (valid iff max_width >= 0)
  std::vector<TickInterval> argmax; ///< by ORIGINAL slot; empty when max_width < 0

  void merge(WorstCaseBest&& other) noexcept;
};

/// Walks permuted worlds [begin, end) run-batched; exact, allocation-light.
/// A non-null @p cancel is polled per digit-0 run and aborts the walk with
/// CancelledError.
[[nodiscard]] WorstCaseBest worst_case_lane_block(const WorstCaseLane& lane,
                                                  std::uint64_t begin, std::uint64_t end,
                                                  const CancelToken* cancel = nullptr);

/// Whole-space search: block fan-out over the shared ThreadPool
/// (num_threads 0 = hardware threads, 1 = serial) with a deterministic
/// merge — results are bit-identical for every thread count.
[[nodiscard]] WorstCaseBest worst_case_lane_search(const WorstCaseLane& lane,
                                                   unsigned num_threads,
                                                   const CancelToken* cancel = nullptr);

}  // namespace arsf::sim::engine
