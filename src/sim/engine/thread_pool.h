#pragma once
// Minimal blocking thread pool for the enumeration fan-out.
//
// The engines split a world-index range into contiguous blocks and run one
// IncrementalSweep per block with private accumulators; the pool only
// supplies the workers.  Determinism is the callers' job and comes for free
// from the block structure: block boundaries depend on the requested block
// count alone (never on scheduling), every block writes its own slot, and
// the caller merges slots in block order — so results are independent of how
// many OS threads actually executed and in what interleaving.
//
// run() executes tasks 0..count-1 (worker threads pull indices from a shared
// atomic), blocks until all complete, and rethrows the first task exception.
// A count of 1 — or a pool of size 1 — degenerates to inline execution on
// the calling thread with no synchronisation overhead.

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine/cancel.h"

namespace arsf::sim::engine {

class ThreadPool {
 public:
  /// Spawns @p threads - 1 workers (the calling thread participates in
  /// run()); 0 means default_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread).
  [[nodiscard]] unsigned size() const noexcept { return size_; }

  /// Runs task(0) ... task(count-1) across the pool; returns when all have
  /// finished.  Tasks must not call run() on the same pool (no nesting) —
  /// except with a count of 1, which executes inline without touching the
  /// pool and is therefore always safe (the scenario Runner and the
  /// worst-case subset fan-out rely on this for their serial inner engines).
  ///
  /// When @p cancel is non-null, workers poll it at task startup: once the
  /// token reads cancelled, remaining tasks are claimed but NOT executed,
  /// and run() throws CancelledError after the drain.  If every task had
  /// already executed by the time the token tripped, run() returns normally
  /// — a fan-out that completes is indistinguishable from an uncancelled
  /// one, which is what keeps completed runs bit-identical.
  void run(std::size_t count, const std::function<void(std::size_t)>& task,
           const CancelToken* cancel = nullptr);

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static unsigned default_threads() noexcept;

  /// Process-wide pool of default_threads() width, created on first use.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;  ///< pimpl keeps <mutex>/<condition_variable> out of the header
  unsigned size_ = 1;
};

/// Half-open index range [begin, end).
struct IndexBlock {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Splits [0, total) into at most @p blocks contiguous near-equal pieces
/// (empty pieces are dropped, so fewer blocks come back when total < blocks).
[[nodiscard]] std::vector<IndexBlock> partition_blocks(std::uint64_t total, unsigned blocks);

}  // namespace arsf::sim::engine
