// arsf_serve: the scenario service daemon (src/serve/server.h).
//
//   ./arsf_serve --socket /tmp/arsf.sock
//   ./arsf_serve --socket /tmp/arsf.sock --spool /var/spool/arsf
//                --workers 8 --deadline-ms 2000 --budget 100000000
//                --retries 1 --cache 268435456 --cache-file cache.jsonl
//                --drain-ms 5000
//
// Clients write one JSON request per line to the socket — a Scenario or a
// SweepSpec in the overlay wire format plus a client-chosen "request_id" —
// and read JSONL response frames keyed by that id (serve/protocol.h).
// Files dropped into --spool as NAME.req are answered into NAME.out.
//
// SIGINT/SIGTERM drain gracefully: in-flight requests finish under their
// own deadlines (bounded by --drain-ms when set), queued requests get
// kCancelled frames.  A second signal hard-cancels.
//
// --state-dir DIR makes the daemon crash-safe: admitted requests with a
// request_id are journaled, their frames spooled durably, and a restarted
// daemon re-queues incomplete work, resumes sweeps at their last checkpoint
// and answers re-submitted ids exactly once (see serve/journal.h).
// --cache-reload-ms N makes a running daemon re-load --cache-file whenever
// its mtime changes, picking up externally-written entries live.
//
// --fault-plan FILE arms the deterministic chaos sites ("accept"/"session"/
// "respond"/"journal"/"crash" plus the execution-layer sites) from a
// FaultPlan JSON file — test tooling, not a production knob.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "scenario/faultplan.h"
#include "serve/server.h"
#include "support/cli.h"

namespace {

arsf::serve::Server* g_server = nullptr;

void on_signal(int /*signum*/) {
  if (g_server != nullptr) g_server->request_stop();
}

void print_usage(const std::string& program) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--spool DIR] [--workers N]\n"
               "          [--deadline-ms N] [--budget WORLDS] [--retries N] [--degrade]\n"
               "          [--cache BYTES] [--cache-file FILE] [--cache-reload-ms N]\n"
               "          [--drain-ms N] [--chunk N] [--max-queued N]\n"
               "          [--max-output-frames N] [--spool-poll-ms N]\n"
               "          [--state-dir DIR] [--fault-plan FILE] [--stats]\n"
               "at least one of --socket / --spool is required\n",
               program.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  arsf::support::ArgParser args{argc, argv};
  arsf::serve::ServeOptions options;
  options.socket_path = args.get_string("socket", "");
  options.spool_dir = args.get_string("spool", "");
  options.workers = static_cast<unsigned>(args.get_int("workers", 0));
  options.default_deadline_ms = static_cast<std::uint64_t>(args.get_int("deadline-ms", 0));
  options.admission_budget = static_cast<std::uint64_t>(args.get_int("budget", 0));
  options.degrade = args.get_bool("degrade", false);
  options.retry.max_attempts = static_cast<std::uint32_t>(args.get_int("retries", 0)) + 1;
  options.cache_bytes = static_cast<std::uint64_t>(args.get_int("cache", 0));
  options.cache_file = args.get_string("cache-file", "");
  options.drain_ms = static_cast<std::uint64_t>(args.get_int("drain-ms", 0));
  options.chunk_scenarios = static_cast<std::size_t>(args.get_int("chunk", 256));
  options.limits.max_queued_requests =
      static_cast<std::size_t>(args.get_int("max-queued", 64));
  options.limits.max_output_frames =
      static_cast<std::size_t>(args.get_int("max-output-frames", 256));
  options.spool_poll_ms = static_cast<std::uint64_t>(args.get_int("spool-poll-ms", 50));
  options.state_dir = args.get_string("state-dir", "");
  options.cache_reload_ms =
      static_cast<std::uint64_t>(args.get_int("cache-reload-ms", 0));
  const std::string fault_plan_path = args.get_string("fault-plan", "");
  const bool print_stats = args.get_bool("stats", false);

  const std::vector<std::string> unknown = args.unknown();
  if (!unknown.empty()) {
    for (const std::string& name : unknown) {
      std::fprintf(stderr, "unknown option: --%s\n", name.c_str());
    }
    print_usage(args.program());
    return 2;
  }
  if (options.socket_path.empty() && options.spool_dir.empty()) {
    print_usage(args.program());
    return 2;
  }

  std::optional<arsf::scenario::FaultInjector> injector;
  if (!fault_plan_path.empty()) {
    std::ifstream in{fault_plan_path};
    if (!in) {
      std::fprintf(stderr, "cannot read fault plan '%s'\n", fault_plan_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      injector.emplace(arsf::scenario::FaultPlan::from_json(text.str()));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "invalid fault plan: %s\n", e.what());
      return 2;
    }
    options.fault_injector = &*injector;
  }

  arsf::serve::Server server{std::move(options)};
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "arsf_serve: %s\n", e.what());
    return 1;
  }
  if (!server.options().socket_path.empty()) {
    std::fprintf(stderr, "arsf_serve: listening on %s\n",
                 server.options().socket_path.c_str());
  }
  if (!server.options().spool_dir.empty()) {
    std::fprintf(stderr, "arsf_serve: watching spool %s\n",
                 server.options().spool_dir.c_str());
  }
  server.wait();

  if (print_stats) {
    const arsf::serve::ServeStats stats = server.stats();
    std::fprintf(stderr,
                 "arsf_serve: connections=%llu (faulted %llu) spool=%llu "
                 "requests accepted=%llu rejected=%llu completed=%llu "
                 "failed=%llu cancelled=%llu frames=%llu "
                 "reclaimed=%llu recovered=%llu journal-rejected=%llu "
                 "deduped=%llu sweeps-resumed=%llu cache-reloads=%llu\n",
                 static_cast<unsigned long long>(stats.connections_accepted),
                 static_cast<unsigned long long>(stats.connections_faulted),
                 static_cast<unsigned long long>(stats.spool_files),
                 static_cast<unsigned long long>(stats.requests_accepted),
                 static_cast<unsigned long long>(stats.requests_rejected),
                 static_cast<unsigned long long>(stats.requests_completed),
                 static_cast<unsigned long long>(stats.requests_failed),
                 static_cast<unsigned long long>(stats.requests_cancelled),
                 static_cast<unsigned long long>(stats.frames_written),
                 static_cast<unsigned long long>(stats.spool_reclaimed),
                 static_cast<unsigned long long>(stats.journal_recovered),
                 static_cast<unsigned long long>(stats.journal_rejected),
                 static_cast<unsigned long long>(stats.requests_deduped),
                 static_cast<unsigned long long>(stats.sweeps_resumed),
                 static_cast<unsigned long long>(stats.cache_reloads));
  }
  g_server = nullptr;
  return 0;
}
