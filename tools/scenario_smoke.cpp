// scenario_smoke — executes EVERY scenario in the registry as its coarse
// smoke variant (capped rounds, cost-bounded attacker) in one concurrent
// Runner batch.  Registered with ctest under the "scenario_smoke" label and
// part of the default test run, so a newly registered scenario can never
// land unexecuted: if it fails validation or crashes its analysis, this
// binary exits non-zero.
//
//   ./scenario_smoke [--threads N] [--verbose]

#include <chrono>
#include <cstdio>

#include "scenario/registry.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto threads = static_cast<unsigned>(args.get_int("threads", 0));
  const bool verbose = args.has("verbose");

  const auto& registry = arsf::scenario::registry();
  std::vector<arsf::scenario::Scenario> batch;
  batch.reserve(registry.size());
  for (const auto& scenario : registry.all()) {
    batch.push_back(arsf::scenario::smoke_variant(scenario));
  }

  std::printf("scenario_smoke: %zu registered scenarios\n", batch.size());
  const auto start = Clock::now();
  const arsf::scenario::Runner runner{{.num_threads = threads}};
  const auto results = runner.run_batch(std::span<const arsf::scenario::Scenario>{batch});
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  if (verbose) std::printf("%s\n", arsf::scenario::render_results(results).c_str());

  int failures = 0;
  for (const auto& result : results) {
    if (result.ok()) continue;
    ++failures;
    std::fprintf(stderr, "FAIL %s (%s): %s\n", result.scenario.c_str(),
                 result.analysis.c_str(), result.error.c_str());
  }
  std::printf("scenario_smoke: %zu ok, %d failed in %.2f s\n", results.size() - failures,
              failures, seconds);
  return failures == 0 ? 0 : 1;
}
