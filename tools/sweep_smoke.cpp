// sweep_smoke — expands the registry-backed "sweep/table1-grid" SweepSpec
// (~100 grid points) and streams it twice through run_sweep with a
// CsvStreamSink: once on a serial Runner, once with the default thread
// fan-out.  Registered with ctest under the "sweep_smoke" label; exits
// non-zero unless
//
//   * both runs produce the expected number of results (one per grid point),
//   * results arrive in input (grid) order with strictly increasing indices,
//   * every grid point succeeds, and
//   * the two CSV byte streams are identical — the streaming pipeline's
//     thread-count invariance seen end-to-end.
//
//   ./sweep_smoke [--chunk N] [--verbose]

#include <cstdio>
#include <sstream>
#include <string>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/cli.h"

namespace {

// CSV stream + order/failure bookkeeping in one pass.
class CheckingSink final : public arsf::scenario::ResultSink {
 public:
  explicit CheckingSink(std::ostream& csv) : csv_(csv) {}

  void on_result(std::size_t index, const arsf::scenario::ScenarioResult& result) override {
    if (index != next_) order_ok_ = false;
    ++next_;
    if (!result.ok()) {
      ++failures_;
      std::fprintf(stderr, "FAIL %s (%s): %s\n", result.scenario.c_str(),
                   result.analysis.c_str(), result.error.c_str());
    }
    csv_.on_result(index, result);
  }
  void on_finish(std::size_t total) override {
    finished_total_ = total;
    csv_.on_finish(total);
  }

  [[nodiscard]] bool order_ok() const noexcept { return order_ok_; }
  [[nodiscard]] std::size_t results() const noexcept { return next_; }
  [[nodiscard]] std::size_t failures() const noexcept { return failures_; }
  [[nodiscard]] std::size_t finished_total() const noexcept { return finished_total_; }

 private:
  arsf::scenario::CsvStreamSink csv_;
  std::size_t next_ = 0;
  std::size_t failures_ = 0;
  std::size_t finished_total_ = 0;
  bool order_ok_ = true;
};

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const auto chunk = static_cast<std::size_t>(args.get_int("chunk", 32));
  const bool verbose = args.has("verbose");

  const arsf::scenario::SweepSpec& spec =
      arsf::scenario::registry().sweep_at("sweep/table1-grid");
  const auto expected = static_cast<std::size_t>(spec.size());
  std::printf("sweep_smoke: %s, %zu grid points, chunk %zu\n", spec.name.c_str(), expected,
              chunk);

  arsf::scenario::SweepRunOptions options;
  options.chunk_scenarios = chunk;

  int exit_code = 0;
  std::string baseline;
  for (const unsigned threads : {1u, 0u}) {
    std::ostringstream csv;
    CheckingSink sink{csv};
    const arsf::scenario::Runner runner{{.num_threads = threads}};
    const std::size_t total = arsf::scenario::run_sweep(spec, runner, sink, options);

    const bool counts_ok = total == expected && sink.results() == expected &&
                           sink.finished_total() == expected;
    if (!counts_ok || !sink.order_ok() || sink.failures() != 0) {
      std::fprintf(stderr,
                   "threads=%u: %zu/%zu results, order %s, %zu failed, on_finish(%zu)\n",
                   threads, sink.results(), expected, sink.order_ok() ? "ok" : "BROKEN",
                   sink.failures(), sink.finished_total());
      exit_code = 1;
    }
    if (baseline.empty()) {
      baseline = csv.str();
    } else if (csv.str() != baseline) {
      std::fprintf(stderr, "threads=%u: CSV stream differs from the serial baseline\n",
                   threads);
      exit_code = 1;
    }
    if (verbose) std::printf("threads=%u: %zu CSV bytes\n", threads, csv.str().size());
  }

  std::printf("sweep_smoke: %s\n", exit_code == 0 ? "ok" : "FAILED");
  return exit_code;
}
