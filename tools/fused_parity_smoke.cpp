// fused_parity_smoke — coarsened differential sweep of the fused
// multi-analysis pass against the standalone analyses, registered as a ctest
// in the default run (CMake label "fused_parity_smoke").  Two layers:
//
//   * golden: every registered fused/<name> bundle (at smoke settings) vs
//     each of its members run standalone through the Runner, every member
//     metric compared bit-exactly under the member's standalone name;
//   * randomized: --iterations seeded random fused scenarios (clean lane and
//     attacker-policy lane, engine threads 1 and 0) vs their standalone
//     member runs.
//
// An ARSF_SANITIZE=address build registers this same binary with a smaller
// --iterations (see CMakeLists.txt), so the fused engine path runs under
// ASan on every sanitized CI pass.
//
//   ./fused_parity_smoke [--iterations N] [--seed S]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "support/cli.h"
#include "support/rng.h"

namespace {

using arsf::scenario::AnalysisKind;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;

constexpr AnalysisKind kAllMembers[] = {
    AnalysisKind::kEnumerate,
    AnalysisKind::kWidthHistogram,
    AnalysisKind::kDetectionRate,
    AnalysisKind::kWidthArgmax,
};

arsf::attack::ExpectationOptions fast_options() {
  arsf::attack::ExpectationOptions options;
  options.max_joint = 1;
  options.max_completions = 8;
  options.candidate_stride = 2;
  return options;
}

// Returns the number of member metrics that diverge (0 = parity); prints one
// line per divergence.
int compare_members(const arsf::scenario::Runner& runner, const Scenario& fused,
                    const ScenarioResult& fused_result, const char* label) {
  int failures = 0;
  for (const AnalysisKind member : fused.fused_members) {
    Scenario standalone = fused;
    standalone.analysis = member;
    standalone.fused_members.clear();
    standalone.num_threads = 1;
    const ScenarioResult reference = runner.run(standalone);
    if (!reference.ok()) {
      std::fprintf(stderr, "FAIL %s member %s: %s\n", label,
                   arsf::scenario::to_string(member).c_str(), reference.error.c_str());
      ++failures;
      continue;
    }
    for (const auto& metric : reference.metrics) {
      const double fused_value = fused_result.metric_or(metric.key, -1e308);
      if (fused_value != metric.value) {
        std::fprintf(stderr, "FAIL %s member %s metric %s: fused %.17g vs standalone %.17g\n",
                     label, arsf::scenario::to_string(member).c_str(), metric.key.c_str(),
                     fused_value, metric.value);
        ++failures;
      }
    }
  }
  return failures;
}

int check_registered_bundles() {
  const arsf::scenario::Runner runner;
  int failures = 0;
  int bundles = 0;
  for (const auto& registered : arsf::scenario::registry().all()) {
    if (registered.analysis != AnalysisKind::kFused) continue;
    ++bundles;
    Scenario fused = arsf::scenario::smoke_variant(registered);
    fused.num_threads = 1;
    const ScenarioResult result = runner.run(fused);
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", fused.name.c_str(), result.error.c_str());
      ++failures;
      continue;
    }
    failures += compare_members(runner, fused, result, fused.name.c_str());
  }
  std::printf("fused_parity_smoke: %d registered bundles checked\n", bundles);
  return failures;
}

int check_random_configs(int iterations, std::uint64_t seed) {
  arsf::support::Rng rng{seed};
  const arsf::scenario::Runner runner;
  int failures = 0;
  for (int i = 0; i < iterations; ++i) {
    const bool with_policy = rng.chance(0.33);
    Scenario fused;
    fused.name = "smoke/fused-random-" + std::to_string(i);
    fused.description = "seeded random fused draw";
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, with_policy ? 3 : 5));
    fused.widths.resize(n);
    for (auto& w : fused.widths) w = static_cast<double>(rng.uniform_int(1, 6));
    fused.schedule = rng.chance(0.5) ? arsf::sched::ScheduleKind::kAscending
                                     : arsf::sched::ScheduleKind::kDescending;
    const std::int64_t max_fa =
        std::min<std::int64_t>(1, (static_cast<std::int64_t>(n) + 1) / 2 - 1);
    fused.fa = static_cast<std::size_t>(rng.uniform_int(0, max_fa));
    fused.policy = with_policy ? arsf::scenario::PolicyKind::kExpectation
                               : arsf::scenario::PolicyKind::kNone;
    fused.policy_options = fast_options();
    fused.analysis = AnalysisKind::kFused;
    fused.fused_members.assign(std::begin(kAllMembers), std::end(kAllMembers));
    fused.num_threads = rng.chance(0.5) ? 1 : 0;

    const ScenarioResult result = runner.run(fused);
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL random #%d: %s\n", i, result.error.c_str());
      ++failures;
      continue;
    }
    const std::string label = "random #" + std::to_string(i);
    failures += compare_members(runner, fused, result, label.c_str());
  }
  std::printf("fused_parity_smoke: %d random configs checked\n", iterations);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto iterations = static_cast<int>(args.get_int("iterations", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xf05edba7));

  const auto start = Clock::now();
  int failures = check_registered_bundles();
  failures += check_random_configs(iterations, seed);
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::printf("fused_parity_smoke: %d failure(s) in %.2f s\n", failures, seconds);
  return failures == 0 ? 0 : 1;
}
