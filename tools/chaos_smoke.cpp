// chaos_smoke — deterministic fault-injection harness for the robust
// execution layer (scenario/runner.h + scenario/faultplan.h).  Registered
// with ctest under the "chaos_smoke" label; part of the default run.
//
// A seeded matrix of FaultPlans is driven through Runner::run_batch and
// run_sweep, each plan at thread counts {1, 0 (hardware)}.  For every plan
// the harness asserts the execution layer's invariants:
//
//   * every batch TERMINATES (the ctest TIMEOUT is the deadlock backstop),
//   * every slot delivers exactly one frame, in input order,
//   * the per-slot frames — serialized through the JSONL writer — are
//     BIT-IDENTICAL across thread counts (fault decisions are pure functions
//     of (seed, site, key, attempt), never of scheduling),
//   * transient analysis faults (attempt_limit 1) retry into `retried_ok`
//     with the same metrics an unfaulted run produces; persistent ones
//     exhaust the retry budget into `failed`,
//   * a zero-fault plan reproduces the no-injector run byte for byte,
//   * a sink fault aborts the batch cleanly after delivering the ordered
//     prefix, and
//   * a checkpoint fault is non-fatal: the sweep completes, the failure is
//     counted.
//
//   ./chaos_smoke [--iterations N] [--verbose]
//
// --iterations scales the seeded random-plan sweep (the CMake registration
// shortens it under ARSF_SANITIZE so the instrumented pass stays fast).

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/faultplan.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/cli.h"

namespace {

using arsf::scenario::AnalysisKind;
using arsf::scenario::CollectingSink;
using arsf::scenario::FaultInjector;
using arsf::scenario::FaultPlan;
using arsf::scenario::FaultRule;
using arsf::scenario::PolicyKind;
using arsf::scenario::ResultStatus;
using arsf::scenario::Runner;
using arsf::scenario::RunnerOptions;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;
using arsf::scenario::SweepRunOptions;
using arsf::scenario::SweepSpec;

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  }
}

/// Cheap, deterministic batch: exact enumeration over tiny worlds, plus one
/// scenario that always fails validation — the mixed ok/failed stream every
/// ordering assertion needs.
std::vector<Scenario> make_batch() {
  std::vector<Scenario> batch;
  for (int k = 0; k < 6; ++k) {
    Scenario s;
    s.name = "chaos/enum-" + std::to_string(k);
    s.widths = {1.0, 2.0, 2.0 + k};
    s.fa = 0;
    s.policy = PolicyKind::kNone;
    s.analysis = AnalysisKind::kEnumerate;
    batch.push_back(std::move(s));
  }
  Scenario bad;
  bad.name = "chaos/invalid";
  bad.widths = {};  // validate() rejects empty widths -> status `failed`
  batch.push_back(std::move(bad));
  return batch;
}

/// One frame per slot, serialized exactly as the JSONL wire format.
std::vector<std::string> run_frames(const std::vector<Scenario>& batch,
                                    const RunnerOptions& options) {
  CollectingSink sink;
  const Runner runner{options};
  runner.run_batch(std::span<const Scenario>{batch}, sink);
  std::vector<std::string> frames;
  for (std::size_t i = 0; i < sink.results().size(); ++i) {
    frames.push_back(arsf::scenario::to_json(i, sink.results()[i]));
  }
  return frames;
}

void check_plan_parity(const std::vector<Scenario>& batch, const FaultPlan& plan,
                       const std::string& label, bool verbose) {
  const FaultInjector injector{plan};
  std::vector<std::string> baseline;
  for (const unsigned threads : {1u, 0u}) {
    RunnerOptions options;
    options.num_threads = threads;
    options.fault_injector = &injector;
    options.retry.max_attempts = 2;
    const std::vector<std::string> frames = run_frames(batch, options);
    expect(frames.size() == batch.size(), label + ": one frame per slot");
    if (baseline.empty()) {
      baseline = frames;
    } else {
      expect(frames == baseline,
             label + ": frames must be bit-identical across thread counts");
    }
  }
  if (verbose) {
    std::fprintf(stderr, "%s:\n", label.c_str());
    for (const std::string& frame : baseline) std::fprintf(stderr, "  %s\n", frame.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const bool verbose = args.has("verbose");
  const auto iterations = static_cast<std::uint64_t>(args.get_int("iterations", 40));

  const std::vector<Scenario> batch = make_batch();

  // ---- zero-fault plan == no injector, byte for byte ----------------------
  {
    FaultPlan empty;
    empty.seed = 7;
    const FaultInjector injector{empty};
    RunnerOptions with_injector;
    with_injector.num_threads = 1;
    with_injector.fault_injector = &injector;
    RunnerOptions without;
    without.num_threads = 1;
    expect(run_frames(batch, with_injector) == run_frames(batch, without),
           "zero-fault plan must reproduce the uninjected run byte-identically");
  }

  // ---- transient vs persistent analysis faults ----------------------------
  {
    FaultPlan transient;
    transient.seed = 1;
    transient.rules = {FaultRule{"analysis", /*nth=*/2, 0.0, /*attempt_limit=*/1}};
    const FaultInjector injector{transient};
    RunnerOptions options;
    options.num_threads = 1;
    options.fault_injector = &injector;
    options.retry.max_attempts = 2;
    CollectingSink sink;
    Runner{options}.run_batch(std::span<const Scenario>{batch}, sink);
    const ScenarioResult& hit = sink.results()[1];  // key 2 = slot index 1
    expect(hit.status == ResultStatus::kRetriedOk && hit.attempts == 2,
           "transient fault + retry must yield retried_ok on attempt 2");
    RunnerOptions clean_options;
    clean_options.num_threads = 1;
    CollectingSink clean;
    Runner{clean_options}.run_batch(std::span<const Scenario>{batch}, clean);
    expect(hit.metrics.size() == clean.results()[1].metrics.size() &&
               hit.error.empty(),
           "a retried_ok frame carries the full metrics of an unfaulted run");

    FaultPlan persistent = transient;
    persistent.rules[0].attempt_limit = 0;  // every attempt
    const FaultInjector stubborn{persistent};
    options.fault_injector = &stubborn;
    CollectingSink sunk;
    Runner{options}.run_batch(std::span<const Scenario>{batch}, sunk);
    expect(sunk.results()[1].status == ResultStatus::kFailed &&
               sunk.results()[1].attempts == 2,
           "persistent fault must exhaust the retry budget into `failed`");
  }

  // ---- fixed plan matrix: thread-count frame parity -----------------------
  {
    const std::vector<FaultPlan> matrix = {
        FaultPlan{11, {FaultRule{"analysis", 3, 0.0, 1}}},
        FaultPlan{13, {FaultRule{"analysis", 0, 0.5, 0}}},
        FaultPlan{17, {FaultRule{"pool", 4, 0.0, 1}}},
        FaultPlan{19,
                  {FaultRule{"analysis", 0, 0.3, 1}, FaultRule{"pool", 0, 0.25, 1}}},
    };
    for (std::size_t p = 0; p < matrix.size(); ++p) {
      check_plan_parity(batch, matrix[p], "plan#" + std::to_string(p), verbose);
    }
    // Seeded random-plan sweep: same shape, fresh seeds.
    for (std::uint64_t seed = 0; seed < iterations; ++seed) {
      FaultPlan plan;
      plan.seed = 1000 + seed;
      plan.rules = {FaultRule{"analysis", 0, 0.4, (seed % 2 == 0) ? 1u : 0u},
                    FaultRule{"pool", 0, 0.2, 1}};
      check_plan_parity(batch, plan, "seed#" + std::to_string(seed), false);
    }
  }

  // ---- sink fault: clean abort after the ordered prefix -------------------
  {
    FaultPlan plan;
    plan.seed = 23;
    plan.rules = {FaultRule{"sink", /*nth=*/3, 0.0, 1}};
    const FaultInjector injector{plan};
    for (const unsigned threads : {1u, 0u}) {
      CollectingSink collected;
      arsf::scenario::FaultInjectingSink faulty{collected, injector};
      RunnerOptions options;
      options.num_threads = threads;
      const Runner runner{options};
      bool threw = false;
      try {
        runner.run_batch(std::span<const Scenario>{batch}, faulty);
      } catch (const arsf::scenario::InjectedFault&) {
        threw = true;
      }
      expect(threw, "a sink fault must abort the batch with the injected exception");
      expect(collected.results().size() == 2,
             "the ordered prefix before the sink fault (2 results) must be delivered");
    }
  }

  // ---- checkpoint fault: non-fatal, sweep completes -----------------------
  {
    SweepSpec spec;
    spec.name = "chaos-sweep";
    Scenario base;
    base.name = "base";
    base.widths = {1, 2, 3};
    base.fa = 0;
    base.policy = PolicyKind::kNone;
    spec.base = base;
    spec.seed_count = 6;

    FaultPlan plan;
    plan.seed = 29;
    plan.rules = {FaultRule{"checkpoint", /*nth=*/2, 0.0, 1}};
    const FaultInjector injector{plan};

    const std::string progress =
        std::filesystem::temp_directory_path().string() + "/arsf_chaos.progress";
    std::filesystem::remove(progress);
    SweepRunOptions options;
    options.chunk_scenarios = 2;
    options.checkpoint_path = progress;
    options.fault_injector = &injector;
    std::size_t save_failures = 0;
    options.checkpoint_failures = &save_failures;

    CollectingSink sink;
    RunnerOptions runner_options;
    runner_options.num_threads = 1;
    const std::size_t total = run_sweep(spec, Runner{runner_options}, sink, options);
    expect(total == 6 && sink.results().size() == 6,
           "a checkpoint fault must not stop the sweep from completing");
    expect(save_failures == 1, "exactly one checkpoint save (ordinal 2) must have failed");
    expect(!std::filesystem::exists(progress),
           "a completed sweep still drops its resume token");
  }

  // ---- FaultPlan JSON round-trip ------------------------------------------
  {
    FaultPlan plan;
    plan.seed = 0xfeedfaceULL;
    plan.rules = {FaultRule{"analysis", 3, 0.25, 1}, FaultRule{"checkpoint", 0, 0.125, 0}};
    const FaultPlan back = FaultPlan::from_json(plan.to_json());
    expect(back == plan, "FaultPlan JSON round-trip must be exact");
  }

  if (failures != 0) {
    std::fprintf(stderr, "chaos_smoke: %d invariant(s) violated\n", failures);
    return 1;
  }
  std::printf("chaos_smoke: all fault-plan invariants held (%llu random plans)\n",
              static_cast<unsigned long long>(iterations));
  return 0;
}
