// cache_parity_smoke — end-to-end differential for the content-addressed
// result cache, registered as a ctest in the default run (CMake label
// "cache_parity_smoke").  Three layers, all compared at the FRAME level
// (scenario::to_json byte equality, not just metric values):
//
//   * registry: every registered scenario (at smoke settings) runs fresh
//     (no cache), cold (cache armed, miss + insert) and warm (served from
//     cache); the cold frame must equal the fresh frame byte for byte, and
//     the warm frame must equal the fresh frame with only from_cache
//     flipped.
//   * persistent reload: the warmed store is saved to disk, loaded into a
//     brand-new cache, and every scenario re-runs against it — the served
//     frames must be byte-identical to the in-memory warm frames.
//   * randomized: --iterations seeded random scenarios across analysis
//     kinds, policies and schedules (engine threads 1 and 0), same
//     cold/warm frame discipline.
//
// An ARSF_SANITIZE=address build registers this same binary with a smaller
// --iterations (see CMakeLists.txt), so the cache path runs under ASan on
// every sanitized CI pass.
//
//   ./cache_parity_smoke [--iterations N] [--seed S]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/result_cache.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "support/cli.h"
#include "support/rng.h"

namespace {

using arsf::scenario::AnalysisKind;
using arsf::scenario::CacheStats;
using arsf::scenario::ResultCache;
using arsf::scenario::Runner;
using arsf::scenario::RunnerOptions;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;

arsf::attack::ExpectationOptions fast_options() {
  arsf::attack::ExpectationOptions options;
  options.max_joint = 1;
  options.max_completions = 8;
  options.candidate_stride = 2;
  return options;
}

// The fresh/cold/warm frame discipline for one scenario against one cache.
// Returns the number of divergences (0 = parity); prints one line each.
// @p warm_json, when given, receives the warm frame's JSON for later
// comparison against a persistent reload.
int check_frames(const Runner& fresh_runner, const Runner& cached_runner,
                 const Scenario& scenario, const char* label,
                 std::string* warm_json = nullptr) {
  const ScenarioResult fresh = fresh_runner.run(scenario);
  if (!fresh.ok()) {
    std::fprintf(stderr, "FAIL %s: fresh run failed: %s\n", label, fresh.error.c_str());
    return 1;
  }
  const std::string fresh_json = arsf::scenario::to_json(0, fresh);

  int failures = 0;
  ScenarioResult expected_warm = fresh;
  expected_warm.from_cache = true;
  const std::string expected_warm_json = arsf::scenario::to_json(0, expected_warm);

  // The first cached run is usually a miss, but an EARLIER scenario from the
  // same canonical class may already have warmed the store — then the serve
  // is cross-scenario sharing and must still equal THIS scenario's fresh
  // frame bit for bit.
  const ScenarioResult cold = cached_runner.run(scenario);
  if (arsf::scenario::to_json(0, cold) !=
      (cold.from_cache ? expected_warm_json : fresh_json)) {
    std::fprintf(stderr, "FAIL %s: cold frame diverges from fresh\n", label);
    ++failures;
  }
  const ScenarioResult warm = cached_runner.run(scenario);
  if (!warm.from_cache) {
    std::fprintf(stderr, "FAIL %s: warm run was not served from cache\n", label);
    ++failures;
  }
  const std::string warm_text = arsf::scenario::to_json(0, warm);
  if (warm_text != expected_warm_json) {
    std::fprintf(stderr, "FAIL %s: warm frame diverges from fresh (beyond from_cache)\n",
                 label);
    ++failures;
  }
  if (warm_json != nullptr) *warm_json = warm_text;
  return failures;
}

// Cheap smoke settings shared by every layer: registry smoke caps plus fast
// policy options and a capped sampling budget.
Scenario smoke_settings(Scenario scenario) {
  scenario = arsf::scenario::smoke_variant(std::move(scenario));
  scenario.policy_options = fast_options();
  scenario.rounds = std::min<std::size_t>(scenario.rounds, 300);
  scenario.num_threads = 1;
  return scenario;
}

int check_registry(std::vector<Scenario>& warmed, std::vector<std::string>& warm_frames,
                   ResultCache& cache) {
  const Runner fresh_runner;
  RunnerOptions options;
  options.cache = &cache;
  const Runner cached_runner{options};

  int failures = 0;
  std::size_t checked = 0;
  for (const auto& registered : arsf::scenario::registry().all()) {
    Scenario scenario = smoke_settings(registered);
    std::string warm_json;
    const int diverged =
        check_frames(fresh_runner, cached_runner, scenario, scenario.name.c_str(), &warm_json);
    failures += diverged;
    ++checked;
    if (diverged == 0) {
      // Only clean scenarios feed the reload layer; a divergence is already
      // counted once and would only double-report there.
      warmed.push_back(std::move(scenario));
      warm_frames.push_back(std::move(warm_json));
    }
  }
  std::printf("cache_parity_smoke: %zu registry scenarios checked\n", checked);
  return failures;
}

// Saves the warmed store, reloads it into a brand-new cache and re-serves
// every scenario: the frames must be byte-identical to the in-memory warm
// frames (status ok, one attempt, from_cache set, same metrics bit for bit).
int check_persistent_reload(const std::vector<Scenario>& warmed,
                            const std::vector<std::string>& warm_frames,
                            const ResultCache& cache, std::uint64_t seed) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("arsf_cache_parity_smoke_" + std::to_string(seed) + ".jsonl"))
          .string();
  int failures = 0;
  try {
    cache.save_file(path);
    ResultCache reloaded;
    const ResultCache::LoadReport report = reloaded.load_file(path);
    if (report.rejected != 0) {
      std::fprintf(stderr, "FAIL reload: %zu line(s) of our own store rejected\n",
                   report.rejected);
      ++failures;
    }

    RunnerOptions warm_options;
    warm_options.cache = &reloaded;
    const Runner warm_runner{warm_options};
    for (std::size_t i = 0; i < warmed.size(); ++i) {
      const ScenarioResult served = warm_runner.run(warmed[i]);
      if (!served.from_cache) {
        std::fprintf(stderr, "FAIL reload %s: not served from the reloaded store\n",
                     warmed[i].name.c_str());
        ++failures;
        continue;
      }
      if (arsf::scenario::to_json(0, served) != warm_frames[i]) {
        std::fprintf(stderr, "FAIL reload %s: served frame diverges from the warm frame\n",
                     warmed[i].name.c_str());
        ++failures;
      }
    }
    std::printf("cache_parity_smoke: %zu scenarios re-served after reload\n", warmed.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "FAIL reload: %s\n", e.what());
    ++failures;
  }
  std::remove(path.c_str());
  return failures;
}

int check_random_configs(int iterations, std::uint64_t seed) {
  arsf::support::Rng rng{seed};
  const Runner fresh_runner;
  ResultCache cache;
  RunnerOptions options;
  options.cache = &cache;
  const Runner cached_runner{options};

  int failures = 0;
  for (int i = 0; i < iterations; ++i) {
    Scenario s;
    s.name = "smoke/cache-random-" + std::to_string(i);
    s.description = "seeded random cache draw";
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 4));
    s.widths.resize(n);
    for (auto& w : s.widths) w = static_cast<double>(rng.uniform_int(1, 6));
    switch (rng.uniform_int(0, 5)) {
      case 0: s.analysis = AnalysisKind::kEnumerate; break;
      case 1: s.analysis = AnalysisKind::kWidthHistogram; break;
      case 2: s.analysis = AnalysisKind::kDetectionRate; break;
      case 3: s.analysis = AnalysisKind::kWidthArgmax; break;
      case 4: s.analysis = AnalysisKind::kWorstCase; break;
      default:
        s.analysis = AnalysisKind::kMonteCarlo;
        s.rounds = 60;
        break;
    }
    s.fa = static_cast<std::size_t>(rng.uniform_int(0, s.resolved_f()));
    if (rng.chance(0.4)) {
      s.policy = arsf::scenario::PolicyKind::kExpectation;
      s.policy_options = fast_options();
    } else {
      s.policy = arsf::scenario::PolicyKind::kNone;
    }
    s.schedule = rng.chance(0.5) ? arsf::sched::ScheduleKind::kAscending
                                 : arsf::sched::ScheduleKind::kDescending;
    s.seed = rng.next();
    s.num_threads = rng.chance(0.5) ? 1 : 0;

    const std::string label = "random #" + std::to_string(i);
    failures += check_frames(fresh_runner, cached_runner, s, label.c_str());
  }
  const CacheStats stats = cache.stats();
  std::printf(
      "cache_parity_smoke: %d random configs checked (%llu hits, %llu misses, %llu inserts)\n",
      iterations, static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.inserts));
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto iterations = static_cast<int>(args.get_int("iterations", 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xcac4e5eed));

  const auto start = Clock::now();
  std::vector<Scenario> warmed;
  std::vector<std::string> warm_frames;
  ResultCache cache;
  int failures = check_registry(warmed, warm_frames, cache);
  failures += check_persistent_reload(warmed, warm_frames, cache, seed);
  failures += check_random_configs(iterations, seed);
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::printf("cache_parity_smoke: %d failure(s) in %.2f s\n", failures, seconds);
  return failures == 0 ? 0 : 1;
}
