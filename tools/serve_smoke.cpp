// serve_smoke — end-to-end exercise of the scenario service daemon
// (src/serve/server.h).  Registered with ctest under the "serve_smoke"
// label; part of the default run.
//
// Phases:
//   * mixed concurrent load — two clients submit interleaved batches over a
//     temp Unix socket (ok / admission-rejected / timed-out requests plus a
//     small sweep); every per-request frame must be BYTE-IDENTICAL to the
//     offline Runner's JSONL output once the spliced request_id field is
//     stripped, and every done frame must carry the right counts.  Repeated
//     --iterations times, alternating worker-pool sizes {1, hardware}.
//   * cached duplicate — a scenario submitted by client A and resubmitted by
//     client B is answered from the shared result cache, bit-identical to
//     the offline cache-hit frame (from_cache set).
//   * graceful shutdown — SIGTERM (a real signal through the daemon's
//     async-signal-safe request_stop) lands while a request is in flight:
//     the in-flight request finishes under its own deadline, the queued one
//     is answered kCancelled, and the drain completes within 2x the longest
//     in-flight deadline (plus scheduling slack for sanitized builds).
//   * spool mode — a NAME.req file dropped into the watched directory is
//     claimed, answered into NAME.out (write-then-rename) and sealed as
//     NAME.req.done.
//   * serve fault sites — deterministic FaultPlans at the "accept" /
//     "session" / "respond" sites tear down exactly the keyed connection /
//     request / frame while the daemon and every other client carry on.
//
//   ./serve_smoke [--iterations N] [--verbose]

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "scenario/faultplan.h"
#include "scenario/registry.h"
#include "scenario/result_cache.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "support/cli.h"

namespace {

namespace fs = std::filesystem;
using arsf::scenario::AnalysisKind;
using arsf::scenario::CollectingSink;
using arsf::scenario::FaultInjector;
using arsf::scenario::FaultPlan;
using arsf::scenario::FaultRule;
using arsf::scenario::PolicyKind;
using arsf::scenario::ResultCache;
using arsf::scenario::Runner;
using arsf::scenario::RunnerOptions;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;
using arsf::scenario::SweepRunOptions;
using arsf::scenario::SweepSpec;
using arsf::serve::done_frame;
using arsf::serve::frame_request_id;
using arsf::serve::ServeOptions;
using arsf::serve::Server;
using arsf::serve::strip_request_id;

int failures = 0;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  }
}

// ---- request material -------------------------------------------------------

/// Microsecond-cheap exact enumeration (closed-form clean pass).
Scenario cheap(const std::string& name, double w0) {
  Scenario s;
  s.name = name;
  s.widths = {w0, 2.0, 3.0};
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  s.analysis = AnalysisKind::kEnumerate;
  return s;
}

/// Astronomically over any admission budget (estimated_worlds saturates),
/// but perfectly valid — the admission-rejection case.
Scenario monster(const std::string& name) {
  Scenario s;
  s.name = name;
  s.widths.assign(24, 9.0);
  s.step = 0.1;
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  s.analysis = AnalysisKind::kEnumerate;
  return s;
}

std::string with_request_id(const std::string& descriptor_json, const std::string& id) {
  // Splice the transport field into the overlay wire format the descriptor
  // already is; parse_request() extracts it back out before validation.
  return "{\"request_id\":\"" + id + "\"," + descriptor_json.substr(1);
}

// ---- offline oracle ---------------------------------------------------------

struct ExpectedFrames {
  std::vector<std::string> frames;  ///< scenario::to_json texts, in order
  std::size_t failed = 0;
};

RunnerOptions daemon_equivalent_options(std::uint64_t budget, ResultCache* cache) {
  RunnerOptions options;
  options.num_threads = 1;
  options.capture_errors = true;
  options.admission_budget = budget;
  options.cache = cache;
  return options;
}

ExpectedFrames offline_scenario(const Scenario& s, std::uint64_t budget,
                                ResultCache* cache = nullptr) {
  ExpectedFrames expected;
  const ScenarioResult result = Runner{daemon_equivalent_options(budget, cache)}.run(s);
  expected.frames.push_back(arsf::scenario::to_json(0, result));
  expected.failed = result.ok() ? 0 : 1;
  return expected;
}

ExpectedFrames offline_sweep(const SweepSpec& spec, std::uint64_t budget,
                             ResultCache* cache = nullptr) {
  ExpectedFrames expected;
  CollectingSink sink;
  const Runner runner{daemon_equivalent_options(budget, cache)};
  arsf::scenario::run_sweep(spec, runner, sink, SweepRunOptions{});
  for (std::size_t i = 0; i < sink.results().size(); ++i) {
    expected.frames.push_back(arsf::scenario::to_json(i, sink.results()[i]));
    if (!sink.results()[i].ok()) ++expected.failed;
  }
  return expected;
}

/// Frames of one request as delivered by the daemon: result frames, then the
/// done frame, all spliced with the request id.
void verify_request(const std::string& label, const std::string& id,
                    const std::vector<std::string>& got, const ExpectedFrames& expected) {
  expect(got.size() == expected.frames.size() + 1,
         label + ": expected " + std::to_string(expected.frames.size()) +
             " result frames + done, got " + std::to_string(got.size()));
  if (got.size() != expected.frames.size() + 1) return;
  for (std::size_t i = 0; i < expected.frames.size(); ++i) {
    const std::optional<std::string> stripped = strip_request_id(got[i]);
    expect(stripped.has_value() && *stripped == expected.frames[i],
           label + ": frame " + std::to_string(i) +
               " must be byte-identical to the offline runner");
  }
  expect(got.back() == done_frame(id, expected.frames.size(), expected.failed),
         label + ": done frame counts");
}

// ---- socket client ----------------------------------------------------------

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    if (fd_ >= 0 &&
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    std::string data = line;
    data += '\n';
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Next response line, or nullopt on EOF / error / timeout.
  std::optional<std::string> read_line(int timeout_ms = 60'000) {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      if (eof_) return std::nullopt;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                                         remaining.count(), 200)));
      if (rc <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n == 0) {
        eof_ = true;  // deliver any unterminated tail, then nullopt
        if (buffer_.empty()) return std::nullopt;
        continue;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        eof_ = true;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Reads frames until every id in @p ids got its done frame (or timeout);
  /// frames grouped per request id.
  bool collect(const std::set<std::string>& ids,
               std::map<std::string, std::vector<std::string>>& out,
               int timeout_ms = 120'000) {
    std::set<std::string> pending = ids;
    while (!pending.empty()) {
      const std::optional<std::string> line = read_line(timeout_ms);
      if (!line.has_value()) return false;
      const std::optional<std::string> id = frame_request_id(*line);
      if (!id.has_value()) return false;
      out[*id].push_back(*line);
      const std::optional<std::string> stripped = strip_request_id(*line);
      if (stripped.has_value() && stripped->rfind("{\"done\":true,", 0) == 0) {
        pending.erase(*id);
      }
    }
    return true;
  }

  void shutdown_write() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

std::string temp_path(const std::string& stem) {
  return (fs::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

// ---- phase: mixed concurrent load ------------------------------------------

void run_mixed_phase(const Scenario& slow, std::uint64_t budget, unsigned workers,
                     const std::string& tag, bool verbose) {
  ServeOptions options;
  options.socket_path = temp_path("arsf_serve_smoke_" + tag + ".sock");
  options.workers = workers;
  options.admission_budget = budget;
  options.cache_bytes = 64ull << 20;
  Server server{options};
  server.start();

  struct Submission {
    std::string id;
    std::string line;
    ExpectedFrames expected;
  };

  Scenario slow_deadlined = slow;
  slow_deadlined.deadline_ms = 150;

  SweepSpec sweep;
  sweep.name = "serve/sweep-" + tag;
  sweep.base = cheap("serve/sweep-base", 11.0);
  sweep.steps = {1.0, 0.5, 0.25};  // 3 grid points, disjoint from every other request
  sweep.seed_count = 0;

  auto scenario_submission = [&](const std::string& id, const Scenario& s) {
    return Submission{id, with_request_id(s.to_json(), id), offline_scenario(s, budget)};
  };
  std::vector<Submission> batch_a;
  batch_a.push_back(scenario_submission("a-ok-0", cheap("serve/a0-" + tag, 5.0)));
  batch_a.push_back(scenario_submission("a-timeout", slow_deadlined));
  batch_a.push_back(scenario_submission("a-reject", monster("serve/a-huge")));
  batch_a.push_back(
      Submission{"a-sweep", with_request_id(sweep.to_json(), "a-sweep"),
                 offline_sweep(sweep, budget)});
  std::vector<Submission> batch_b;
  batch_b.push_back(scenario_submission("b-ok-0", cheap("serve/b0-" + tag, 7.0)));
  batch_b.push_back(scenario_submission("b-reject", monster("serve/b-huge")));
  batch_b.push_back(scenario_submission("b-timeout", slow_deadlined));
  batch_b.push_back(scenario_submission("b-ok-1", cheap("serve/b1-" + tag, 4.0)));

  auto run_client = [&](const std::vector<Submission>& batch, const std::string& who) {
    Client client{server.options().socket_path};
    expect(client.connected(), who + ": connect");
    if (!client.connected()) return;
    std::set<std::string> ids;
    for (const Submission& submission : batch) {
      expect(client.send_line(submission.line), who + ": send " + submission.id);
      ids.insert(submission.id);
    }
    std::map<std::string, std::vector<std::string>> got;
    expect(client.collect(ids, got), who + ": all requests must reach done frames");
    for (const Submission& submission : batch) {
      verify_request(tag + "/" + who + "/" + submission.id, submission.id,
                     got[submission.id], submission.expected);
      if (verbose) {
        for (const std::string& frame : got[submission.id]) {
          std::fprintf(stderr, "  %s\n", frame.c_str());
        }
      }
    }
  };
  std::thread thread_a{[&] { run_client(batch_a, "clientA"); }};
  std::thread thread_b{[&] { run_client(batch_b, "clientB"); }};
  thread_a.join();
  thread_b.join();

  // Cached duplicate: A computes it, B (a separate connection, strictly
  // later) is answered from the shared cache — both frames byte-identical to
  // the offline cache replay.
  const Scenario dup = cheap("serve/dup-" + tag, 6.0);
  ResultCache offline_cache{64ull << 20};
  const ExpectedFrames dup_fresh = offline_scenario(dup, budget, &offline_cache);
  const ExpectedFrames dup_cached = offline_scenario(dup, budget, &offline_cache);
  expect(dup_cached.frames.at(0).find("\"from_cache\":true") != std::string::npos,
         tag + ": offline oracle's second duplicate run must be a cache hit");
  {
    Client first{server.options().socket_path};
    expect(first.connected(), tag + ": dup clientA connect");
    first.send_line(with_request_id(dup.to_json(), "a-dup"));
    std::map<std::string, std::vector<std::string>> got;
    expect(first.collect({"a-dup"}, got), tag + ": dup clientA done");
    verify_request(tag + "/a-dup", "a-dup", got["a-dup"], dup_fresh);
  }
  {
    Client second{server.options().socket_path};
    expect(second.connected(), tag + ": dup clientB connect");
    second.send_line(with_request_id(dup.to_json(), "b-dup"));
    std::map<std::string, std::vector<std::string>> got;
    expect(second.collect({"b-dup"}, got), tag + ": dup clientB done");
    verify_request(tag + "/b-dup (shared-cache hit)", "b-dup", got["b-dup"], dup_cached);
  }

  server.stop();
  const arsf::serve::ServeStats stats = server.stats();
  expect(stats.requests_accepted == 10, tag + ": 10 requests accepted, got " +
                                            std::to_string(stats.requests_accepted));
  expect(stats.requests_completed == 10, tag + ": 10 requests completed, got " +
                                             std::to_string(stats.requests_completed));
}

// ---- phase: graceful shutdown under load -----------------------------------

Server* g_signal_server = nullptr;
void on_test_signal(int /*signum*/) {
  if (g_signal_server != nullptr) g_signal_server->request_stop();
}

void run_shutdown_phase(const Scenario& slow, std::uint64_t budget) {
  constexpr std::uint64_t kDeadlineMs = 700;
  ServeOptions options;
  options.socket_path = temp_path("arsf_serve_smoke_shutdown.sock");
  options.workers = 2;
  options.admission_budget = budget;
  Server server{options};
  server.start();

  g_signal_server = &server;
  std::signal(SIGTERM, on_test_signal);

  Scenario in_flight = slow;
  in_flight.deadline_ms = kDeadlineMs;

  Client client{server.options().socket_path};
  expect(client.connected(), "shutdown: connect");
  // Same connection = strict FIFO with one in-flight request: the first is
  // running when the signal lands, the second is still queued.
  client.send_line(with_request_id(in_flight.to_json(), "inflight"));
  client.send_line(with_request_id(in_flight.to_json(), "queued"));
  // Signal only once the daemon has PARSED both requests (observable through
  // its own stats) — a blind sleep races the reader on a loaded box, and a
  // signal that lands before "inflight" is dispatched would (correctly)
  // cancel it instead of letting it finish, which is not this scenario.
  const auto accept_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().requests_accepted < 2 &&
         std::chrono::steady_clock::now() < accept_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  expect(server.stats().requests_accepted == 2, "shutdown: both requests accepted");
  // Enqueue -> dispatch is one scheduler wake; 150ms makes "inflight"
  // in-flight while staying far inside its 700ms deadline ("queued" stays
  // queued behind the connection's one-in-flight FIFO).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto t0 = std::chrono::steady_clock::now();
  std::raise(SIGTERM);
  server.wait();
  const auto drain_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  // 2x the longest in-flight deadline, plus fixed slack for sanitized /
  // loaded builders (the engine's cancel latency bound is 2x the budget).
  expect(drain_ms <= static_cast<long long>(2 * kDeadlineMs + 3000),
         "shutdown: drain took " + std::to_string(drain_ms) + "ms, expected <= 2x" +
             std::to_string(kDeadlineMs) + "ms deadline");

  std::map<std::string, std::vector<std::string>> got;
  expect(client.collect({"inflight", "queued"}, got, 10'000),
         "shutdown: both requests must still reach done frames");
  verify_request("shutdown/inflight", "inflight", got["inflight"],
                 offline_scenario(in_flight, budget));
  const std::vector<std::string>& queued = got["queued"];
  expect(queued.size() == 2 &&
             queued.front().find("\"status\":\"cancelled\"") != std::string::npos &&
             queued.front().find("daemon stopping") != std::string::npos,
         "shutdown: the queued request is answered kCancelled");

  std::signal(SIGTERM, SIG_DFL);
  g_signal_server = nullptr;
}

// ---- phase: spool mode ------------------------------------------------------

void run_spool_phase(std::uint64_t budget) {
  ServeOptions options;
  options.spool_dir = temp_path("arsf_serve_smoke_spool");
  options.admission_budget = budget;
  options.workers = 2;
  options.spool_poll_ms = 20;
  Server server{options};
  server.start();

  const Scenario ok = cheap("serve/spool-ok", 8.0);
  const Scenario huge = monster("serve/spool-huge");
  const fs::path dir{options.spool_dir};
  {
    // Write-then-rename into the spool, like every durable file in the repo.
    std::ofstream out{dir / "job1.tmp"};
    out << with_request_id(ok.to_json(), "s-ok") << '\n';
    out << with_request_id(huge.to_json(), "s-reject") << '\n';
  }
  fs::rename(dir / "job1.tmp", dir / "job1.req");

  const fs::path answered = dir / "job1.out";
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fs::exists(answered) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  expect(fs::exists(answered), "spool: job1.out must appear");
  expect(fs::exists(dir / "job1.req.done"), "spool: input sealed as job1.req.done");
  expect(!fs::exists(dir / "job1.out.partial"), "spool: no .partial left behind");

  std::map<std::string, std::vector<std::string>> got;
  std::ifstream in{answered};
  std::string line;
  while (std::getline(in, line)) {
    const std::optional<std::string> id = frame_request_id(line);
    expect(id.has_value(), "spool: every answered line is a protocol frame");
    if (id.has_value()) got[*id].push_back(line);
  }
  verify_request("spool/s-ok", "s-ok", got["s-ok"], offline_scenario(ok, budget));
  verify_request("spool/s-reject", "s-reject", got["s-reject"],
                 offline_scenario(huge, budget));

  server.stop();
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---- phase: serve fault sites ----------------------------------------------

FaultPlan one_shot(const std::string& site, std::uint64_t nth) {
  FaultPlan plan;
  plan.seed = 7;
  FaultRule rule;
  rule.site = site;
  rule.nth = nth;
  plan.rules.push_back(rule);
  return plan;
}

void run_fault_phase(std::uint64_t budget) {
  const Scenario ok = cheap("serve/fault-ok", 9.0);

  {  // "accept" key 1: the first connection is torn down, the second works.
    const FaultInjector injector{one_shot("accept", 1)};
    ServeOptions options;
    options.socket_path = temp_path("arsf_serve_smoke_fault_accept.sock");
    options.admission_budget = budget;
    options.fault_injector = &injector;
    Server server{options};
    server.start();
    Client first{server.options().socket_path};
    expect(!first.read_line(5'000).has_value(),
           "fault/accept: connection 1 must be closed on arrival");
    Client second{server.options().socket_path};
    expect(second.connected(), "fault/accept: connection 2 connects");
    second.send_line(with_request_id(ok.to_json(), "after-fault"));
    std::map<std::string, std::vector<std::string>> got;
    expect(second.collect({"after-fault"}, got), "fault/accept: connection 2 is served");
    verify_request("fault/accept/after-fault", "after-fault", got["after-fault"],
                   offline_scenario(ok, budget));
    server.stop();
    expect(server.stats().connections_faulted == 1, "fault/accept: one faulted connection");
  }

  {  // "session" key 2: exactly the second request of the connection rejects.
    const FaultInjector injector{one_shot("session", 2)};
    ServeOptions options;
    options.socket_path = temp_path("arsf_serve_smoke_fault_session.sock");
    options.admission_budget = budget;
    options.fault_injector = &injector;
    Server server{options};
    server.start();
    Client client{server.options().socket_path};
    client.send_line(with_request_id(ok.to_json(), "r1"));
    client.send_line(with_request_id(ok.to_json(), "r2"));
    client.send_line(with_request_id(ok.to_json(), "r3"));
    std::map<std::string, std::vector<std::string>> got;
    expect(client.collect({"r1", "r2", "r3"}, got), "fault/session: all three answered");
    verify_request("fault/session/r1", "r1", got["r1"], offline_scenario(ok, budget));
    verify_request("fault/session/r3", "r3", got["r3"], offline_scenario(ok, budget));
    const std::vector<std::string>& r2 = got["r2"];
    expect(r2.size() == 2 &&
               r2.front().find("\"status\":\"rejected\"") != std::string::npos &&
               r2.front().find("injected fault at site 'session' key 2") !=
                   std::string::npos,
           "fault/session: request 2 is rejected with the injected-fault frame");
    server.stop();
  }

  {  // "respond" key 2: frame 2 of the connection breaks the client pipe.
    const FaultInjector injector{one_shot("respond", 2)};
    ServeOptions options;
    options.socket_path = temp_path("arsf_serve_smoke_fault_respond.sock");
    options.admission_budget = budget;
    options.fault_injector = &injector;
    Server server{options};
    server.start();
    Client client{server.options().socket_path};
    client.send_line(with_request_id(ok.to_json(), "r1"));
    const std::optional<std::string> first = client.read_line();
    expect(first.has_value() && frame_request_id(*first) == std::optional<std::string>{"r1"},
           "fault/respond: frame 1 is delivered");
    expect(!client.read_line(5'000).has_value(),
           "fault/respond: the connection is torn down at frame 2");
    server.stop();  // and the daemon itself drains cleanly regardless
  }
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const int iterations = static_cast<int>(args.get_int("iterations", 3));
  const bool verbose = args.get_bool("verbose", false);
  const std::vector<std::string> unknown = args.unknown();
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "unknown option: --%s\n", name.c_str());
  }
  if (!unknown.empty()) return 2;

  const Scenario* slow = arsf::scenario::registry().find("bnb/large-n/n18-fa3");
  expect(slow != nullptr, "registry scenario bnb/large-n/n18-fa3 exists");
  if (slow == nullptr) return 1;

  // Budget chosen so the slow registry scenario is ADMITTED (it times out
  // instead) while the monster scenarios are rejected.
  const std::uint64_t budget = arsf::scenario::estimated_worlds(*slow);
  expect(arsf::scenario::estimated_worlds(monster("probe")) > budget,
         "monster scenario must exceed the admission budget");

  for (int i = 0; i < iterations; ++i) {
    const unsigned workers = (i % 2 == 0) ? 0u : 1u;  // hardware pool, then serial
    run_mixed_phase(*slow, budget, workers, "iter" + std::to_string(i), verbose);
  }
  run_shutdown_phase(*slow, budget);
  run_spool_phase(budget);
  run_fault_phase(budget);

  if (failures != 0) {
    std::fprintf(stderr, "serve_smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("serve_smoke: OK\n");
  return 0;
}
