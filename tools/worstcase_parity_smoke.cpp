// worstcase_parity_smoke — coarsened differential sweep of the run-batched
// worst-case fast lane against the exhaustive oracle, registered as a ctest
// in the default run (CMake label "worstcase_parity_smoke").  Two layers:
//
//   * golden: every registered worstcase scenario vs its "fast/" twin
//     through the Runner, metrics compared bit-exactly;
//   * randomized: --iterations seeded random WorstCaseConfigs through
//     worst_case_fusion / worst_case_fusion_fast directly, comparing
//     max_width, configuration count and the full argmax placement.
//
// An ARSF_SANITIZE=address build registers this same binary with a smaller
// --iterations (see CMakeLists.txt), so the new engine path runs under ASan
// on every sanitized CI pass.
//
//   ./worstcase_parity_smoke [--iterations N] [--seed S]

#include <chrono>
#include <cstdio>
#include <string>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/worstcase.h"
#include "support/cli.h"
#include "support/rng.h"

namespace {

int check_registered_pairs() {
  const arsf::scenario::Runner runner;
  int failures = 0;
  int pairs = 0;
  for (const auto& scenario : arsf::scenario::registry().all()) {
    if (scenario.analysis != arsf::scenario::AnalysisKind::kWorstCase) continue;
    const auto* fast = arsf::scenario::registry().find("fast/" + scenario.name);
    if (fast == nullptr) {
      std::fprintf(stderr, "FAIL %s: missing fast/ mirror\n", scenario.name.c_str());
      ++failures;
      continue;
    }
    ++pairs;
    const auto oracle = runner.run(scenario);
    const auto mirrored = runner.run(*fast);
    if (!oracle.ok() || !mirrored.ok()) {
      std::fprintf(stderr, "FAIL %s: %s%s\n", scenario.name.c_str(), oracle.error.c_str(),
                   mirrored.error.c_str());
      ++failures;
      continue;
    }
    bool identical = oracle.metrics.size() == mirrored.metrics.size();
    for (std::size_t m = 0; identical && m < oracle.metrics.size(); ++m) {
      identical = oracle.metrics[m].key == mirrored.metrics[m].key &&
                  oracle.metrics[m].value == mirrored.metrics[m].value;
    }
    if (!identical) {
      std::fprintf(stderr, "FAIL %s: fast metrics diverge from oracle\n",
                   scenario.name.c_str());
      ++failures;
    }
  }
  std::printf("worstcase_parity_smoke: %d registered pairs checked\n", pairs);
  return failures;
}

int check_random_configs(int iterations, std::uint64_t seed) {
  arsf::support::Rng rng{seed};
  int failures = 0;
  for (int i = 0; i < iterations; ++i) {
    arsf::sim::WorstCaseConfig config;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t k = 0; k < n; ++k) config.widths.push_back(rng.uniform_int(1, 7));
    config.f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    for (arsf::SensorId id = 0; id < n; ++id) {
      if (rng.chance(0.35)) config.attacked.push_back(id);
    }
    config.require_undetected = rng.chance(0.7);
    config.num_threads = rng.chance(0.5) ? 1 : 0;

    const auto oracle = arsf::sim::worst_case_fusion(config);
    const auto fast = arsf::sim::worst_case_fusion_fast(config);
    const bool identical = oracle.max_width == fast.max_width &&
                           oracle.configurations == fast.configurations &&
                           oracle.argmax == fast.argmax;
    if (!identical) {
      std::string widths;
      for (const arsf::Tick w : config.widths) widths += std::to_string(w) + ",";
      std::fprintf(stderr,
                   "FAIL random #%d widths {%s} f=%d: oracle width %lld vs fast %lld\n", i,
                   widths.c_str(), config.f, static_cast<long long>(oracle.max_width),
                   static_cast<long long>(fast.max_width));
      ++failures;
    }
  }
  std::printf("worstcase_parity_smoke: %d random configs checked\n", iterations);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto iterations = static_cast<int>(args.get_int("iterations", 150));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5e7fa57));

  const auto start = Clock::now();
  int failures = check_registered_pairs();
  failures += check_random_configs(iterations, seed);
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::printf("worstcase_parity_smoke: %d failure(s) in %.2f s\n", failures, seconds);
  return failures == 0 ? 0 : 1;
}
