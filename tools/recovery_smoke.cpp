// recovery_smoke — kill-and-recover chaos harness for the crash-safe
// scenario service (src/serve/server.h + src/serve/journal.h).  Registered
// with ctest under the "recovery_smoke" label; part of the default run.
//
// Unlike serve_smoke (in-process Server), this harness forks the REAL
// arsf_serve binary and kills it with SIGKILL at seeded points ("crash"
// fault site: the daemon SIGKILLs itself right after a keyed durable event —
// a journal append or a frame-spool append), then restarts it against the
// same state/spool directories and verifies recovery end to end:
//
//   * mid-batch — a 5-request spool job (4 scenarios + a sweep) is killed at
//     --kill-points seeded ordinals; after the final restart every request
//     reaches exactly one done frame set BYTE-IDENTICAL to the offline
//     runner, and no .req.claimed / .out.partial orphans remain.
//   * mid-sweep — a 40-point sweep is killed mid-grid; before each restart
//     the PR 5 checkpoint next to the frame spool must hold a real interior
//     index, and the restarted daemon must log that it resumed AT that index
//     (proving only the tail was re-evaluated), with the final output
//     byte-identical to an uninterrupted offline sweep.
//   * dedup across restart — a socket client's answered ids survive an
//     EXTERNAL SIGKILL: re-submitting the same ids (including one with JSON
//     escapes) to the restarted daemon replays the journaled frames
//     byte-for-byte without re-executing ("deduped=2" in --stats), and a
//     re-submission racing a recovered in-flight sweep joins it as a
//     follower instead of double-executing.
//
// The daemon runs WITHOUT a result cache here: a crash-resumed run would
// otherwise legitimately differ from an uninterrupted one in its from_cache
// bits, breaking byte-comparison (see README "Crash recovery & durability").
//
//   ./recovery_smoke --serve-bin PATH [--kill-points N] [--verbose]

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "scenario/faultplan.h"
#include "scenario/runner.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "support/cli.h"

namespace {

namespace fs = std::filesystem;
using arsf::scenario::AnalysisKind;
using arsf::scenario::CollectingSink;
using arsf::scenario::FaultPlan;
using arsf::scenario::FaultRule;
using arsf::scenario::PolicyKind;
using arsf::scenario::Runner;
using arsf::scenario::RunnerOptions;
using arsf::scenario::Scenario;
using arsf::scenario::ScenarioResult;
using arsf::scenario::SweepRunOptions;
using arsf::scenario::SweepSpec;
using arsf::serve::done_frame;
using arsf::serve::frame_request_id;
using arsf::serve::strip_request_id;

int failures = 0;
bool g_verbose = false;

void expect(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  }
}

void note(const std::string& what) {
  if (g_verbose) std::fprintf(stderr, "  %s\n", what.c_str());
}

std::string temp_path(const std::string& stem) {
  return (fs::temp_directory_path() / (stem + "." + std::to_string(::getpid()))).string();
}

// ---- request material -------------------------------------------------------

/// Microsecond-cheap exact enumeration (closed-form clean pass).
Scenario cheap(const std::string& name, double w0) {
  Scenario s;
  s.name = name;
  s.widths = {w0, 2.0, 3.0};
  s.fa = 0;
  s.policy = PolicyKind::kNone;
  s.analysis = AnalysisKind::kEnumerate;
  return s;
}

std::string with_request_id(const std::string& descriptor_json, const std::string& id) {
  return "{\"request_id\":\"" + id + "\"," + descriptor_json.substr(1);
}

/// The 40-point sweep of the mid-sweep phase (seed axis; every point cheap).
SweepSpec wide_sweep() {
  SweepSpec sweep;
  sweep.name = "recovery/sweep";
  sweep.base = cheap("recovery/sweep-base", 11.0);
  sweep.seed_count = 40;
  sweep.seed_stride = 1;
  return sweep;
}

// ---- offline oracle ---------------------------------------------------------
// The daemon-equivalent execution policy: serial lane, captured errors, no
// cache (see the file comment), no admission budget.

struct ExpectedFrames {
  std::vector<std::string> frames;
  std::size_t failed = 0;
};

RunnerOptions oracle_options() {
  RunnerOptions options;
  options.num_threads = 1;
  options.capture_errors = true;
  return options;
}

ExpectedFrames offline_scenario(const Scenario& s) {
  ExpectedFrames expected;
  const ScenarioResult result = Runner{oracle_options()}.run(s);
  expected.frames.push_back(arsf::scenario::to_json(0, result));
  expected.failed = result.ok() ? 0 : 1;
  return expected;
}

ExpectedFrames offline_sweep(const SweepSpec& spec) {
  ExpectedFrames expected;
  CollectingSink sink;
  const Runner runner{oracle_options()};
  arsf::scenario::run_sweep(spec, runner, sink, SweepRunOptions{});
  for (std::size_t i = 0; i < sink.results().size(); ++i) {
    expected.frames.push_back(arsf::scenario::to_json(i, sink.results()[i]));
    if (!sink.results()[i].ok()) ++expected.failed;
  }
  return expected;
}

void verify_request(const std::string& label, const std::string& id,
                    const std::vector<std::string>& got, const ExpectedFrames& expected) {
  expect(got.size() == expected.frames.size() + 1,
         label + ": expected " + std::to_string(expected.frames.size()) +
             " result frames + done, got " + std::to_string(got.size()));
  if (got.size() != expected.frames.size() + 1) return;
  for (std::size_t i = 0; i < expected.frames.size(); ++i) {
    const std::optional<std::string> stripped = strip_request_id(got[i]);
    expect(stripped.has_value() && *stripped == expected.frames[i],
           label + ": frame " + std::to_string(i) +
               " must be byte-identical to the offline runner");
  }
  expect(got.back() == done_frame(id, expected.frames.size(), expected.failed),
         label + ": done frame counts");
}

// ---- daemon process control -------------------------------------------------

std::string write_crash_plan(const std::string& path, std::uint64_t nth) {
  FaultPlan plan;
  plan.seed = 7;
  FaultRule rule;
  rule.site = "crash";
  rule.nth = nth;
  plan.rules.push_back(rule);
  std::ofstream out{path, std::ios::trunc};
  out << plan.to_json() << '\n';
  return path;
}

pid_t spawn_daemon(const std::string& bin, const std::vector<std::string>& args,
                   const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (log_fd >= 0) {
    ::dup2(log_fd, 2);
    ::close(log_fd);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(bin.c_str()));
  for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  _exit(127);
}

/// Reaps @p pid within @p timeout_ms; false = still running (not reaped).
bool wait_exit(pid_t pid, int timeout_ms, int& status) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const pid_t rc = ::waitpid(pid, &status, WNOHANG);
    if (rc == pid) return true;
    if (rc < 0 && errno != EINTR) return false;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// SIGTERM + reap; expects a clean (exit 0) shutdown.
void stop_daemon(pid_t pid, const std::string& label) {
  if (pid <= 0) return;
  ::kill(pid, SIGTERM);
  int status = 0;
  if (!wait_exit(pid, 60'000, status)) {
    ::kill(pid, SIGKILL);
    (void)wait_exit(pid, 10'000, status);
    expect(false, label + ": daemon did not drain on SIGTERM");
    return;
  }
  expect(WIFEXITED(status) && WEXITSTATUS(status) == 0,
         label + ": daemon exits cleanly on SIGTERM");
}

bool file_contains(const std::string& path, const std::string& needle) {
  std::ifstream in{path};
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str().find(needle) != std::string::npos;
}

/// Waits until the journal holds >= @p count terminal "done" events.  The
/// client can see a done FRAME a beat before the journal's done EVENT is
/// fsync'd (frame spool first, journal second) — an external SIGKILL racing
/// that window would land the restart in the frame-reconcile path instead of
/// the replay path, which is correct but not what the dedup assertions pin.
bool wait_for_journal_done(const std::string& journal_path, std::size_t count) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in{journal_path};
    std::ostringstream text;
    text << in.rdbuf();
    const std::string haystack = text.str();
    std::size_t seen = 0;
    for (std::size_t pos = haystack.find("\"event\":\"done\""); pos != std::string::npos;
         pos = haystack.find("\"event\":\"done\"", pos + 1)) {
      ++seen;
    }
    if (seen >= count) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Group every frame of a spool .out file by request id.
std::map<std::string, std::vector<std::string>> read_out_file(const std::string& path) {
  std::map<std::string, std::vector<std::string>> got;
  std::ifstream in{path};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::optional<std::string> id = frame_request_id(line);
    expect(id.has_value(), "every answered line is a protocol frame: " + line);
    if (id.has_value()) got[*id].push_back(line);
  }
  return got;
}

void expect_no_orphans(const std::string& spool_dir, const std::string& label) {
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator{spool_dir, ec}) {
    const std::string name = entry.path().filename().string();
    expect(name.find(".claimed") == std::string::npos &&
               name.find(".partial") == std::string::npos,
           label + ": no .claimed/.partial orphan, found " + name);
  }
}

struct Workspace {
  std::string spool;
  std::string state;
  explicit Workspace(const std::string& tag)
      : spool(temp_path("arsf_recovery_" + tag + "_spool")),
        state(temp_path("arsf_recovery_" + tag + "_state")) {
    fs::create_directories(spool);
    fs::create_directories(state);
  }
  ~Workspace() {
    std::error_code ec;
    fs::remove_all(spool, ec);
    fs::remove_all(state, ec);
  }
};

/// Runs the spool job at @p spool/@p job until @p out exists: each armed
/// restart runs under a "crash" plan from @p kill_ordinals (the daemon
/// SIGKILLs itself at that durable event), the final restart runs unarmed.
/// Returns the number of SIGKILL deaths observed.
int run_until_complete(const std::string& serve_bin, const Workspace& ws,
                       const std::string& out_path, const std::vector<std::uint64_t>& kills,
                       const std::string& tag, std::vector<std::string>& logs) {
  int killed = 0;
  const std::string plan_path = temp_path("arsf_recovery_" + tag + "_plan.json");
  for (std::size_t round = 0;; ++round) {
    std::vector<std::string> args{"--spool",   ws.spool,   "--state-dir", ws.state,
                                  "--workers", "2",        "--spool-poll-ms", "20",
                                  "--chunk",   "8",        "--stats"};
    const bool armed = round < kills.size();
    if (armed) {
      write_crash_plan(plan_path, kills[round]);
      args.push_back("--fault-plan");
      args.push_back(plan_path);
    }
    const std::string log_path =
        temp_path("arsf_recovery_" + tag + "_log" + std::to_string(round));
    logs.push_back(log_path);
    const pid_t pid = spawn_daemon(serve_bin, args, log_path);
    expect(pid > 0, tag + ": fork");
    if (pid <= 0) return killed;
    note(tag + ": round " + std::to_string(round) +
         (armed ? " armed crash@" + std::to_string(kills[round]) : " unarmed"));

    // Wait for either the seeded death or the sealed output.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    int status = 0;
    bool exited = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (wait_exit(pid, 0, status)) {
        exited = true;
        break;
      }
      if (fs::exists(out_path)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (exited) {
      expect(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
             tag + ": round " + std::to_string(round) +
                 " daemon must die by its seeded SIGKILL");
      if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ++killed;
      continue;  // restart (next round may be unarmed)
    }
    if (!fs::exists(out_path)) {
      expect(false, tag + ": neither death nor output within the deadline");
      ::kill(pid, SIGKILL);
      (void)wait_exit(pid, 10'000, status);
      return killed;
    }
    // Completed: even an armed daemon may finish when recovery replays
    // everything without reaching the kill ordinal.
    stop_daemon(pid, tag + ": round " + std::to_string(round));
    return killed;
  }
}

// ---- socket client (phase: dedup) -------------------------------------------

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    // The daemon binds asynchronously after fork: retry briefly.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
      if (fd_ >= 0 &&
          ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
        return;
      }
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    std::string data = line;
    data += '\n';
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::optional<std::string> read_line(int timeout_ms = 120'000) {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      if (eof_) return std::nullopt;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
      if (remaining.count() <= 0) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      const int rc =
          ::poll(&pfd, 1, static_cast<int>(std::min<long long>(remaining.count(), 200)));
      if (rc <= 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n == 0) {
        eof_ = true;
        if (buffer_.empty()) return std::nullopt;
        continue;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        eof_ = true;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  bool collect(const std::set<std::string>& ids,
               std::map<std::string, std::vector<std::string>>& out,
               int timeout_ms = 120'000) {
    std::set<std::string> pending = ids;
    while (!pending.empty()) {
      const std::optional<std::string> line = read_line(timeout_ms);
      if (!line.has_value()) return false;
      const std::optional<std::string> id = frame_request_id(*line);
      if (!id.has_value()) return false;
      out[*id].push_back(*line);
      const std::optional<std::string> stripped = strip_request_id(*line);
      if (stripped.has_value() && stripped->rfind("{\"done\":true,", 0) == 0) {
        pending.erase(*id);
      }
    }
    return true;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
  bool eof_ = false;
};

// ---- phase: mid-batch kills -------------------------------------------------

void run_batch_phase(const std::string& serve_bin, int kill_points) {
  const Workspace ws{"batch"};

  struct Submission {
    std::string id;
    std::string line;
    ExpectedFrames expected;
  };
  std::vector<Submission> batch;
  const auto add = [&batch](const std::string& id, const Scenario& s) {
    batch.push_back({id, with_request_id(s.to_json(), id), offline_scenario(s)});
  };
  add("r-a", cheap("recovery/a", 5.0));
  add("r-b", cheap("recovery/b", 7.0));
  add("r-c", cheap("recovery/c", 4.0));
  add("r-d", cheap("recovery/d", 6.0));
  SweepSpec sweep;
  sweep.name = "recovery/mini-sweep";
  sweep.base = cheap("recovery/mini-base", 9.0);
  sweep.steps = {1.0, 0.5, 0.25, 0.2, 0.1, 0.05};  // each divides widths {9,2,3}
  sweep.seed_count = 0;
  batch.push_back({"r-sweep", with_request_id(sweep.to_json(), "r-sweep"),
                   offline_sweep(sweep)});

  {
    std::ofstream out{fs::path(ws.spool) / "job1.tmp"};
    for (const Submission& submission : batch) out << submission.line << '\n';
  }
  fs::rename(fs::path(ws.spool) / "job1.tmp", fs::path(ws.spool) / "job1.req");

  // Durable-event ordinals early in the batch: accepts land first, then
  // running transitions and frame appends interleave — every pick is a kill
  // in the middle of admitted-but-unfinished work.
  std::vector<std::uint64_t> kills;
  for (int i = 0; i < kill_points; ++i) kills.push_back(2 + 5 * static_cast<std::uint64_t>(i));

  std::vector<std::string> logs;
  const std::string out_path = (fs::path(ws.spool) / "job1.out").string();
  const int killed = run_until_complete(serve_bin, ws, out_path, kills, "batch", logs);
  expect(killed >= 1, "batch: at least one seeded SIGKILL must land");

  const std::map<std::string, std::vector<std::string>> got = read_out_file(out_path);
  expect(got.size() == batch.size(), "batch: all " + std::to_string(batch.size()) +
                                         " request ids answered, got " +
                                         std::to_string(got.size()));
  for (const Submission& submission : batch) {
    const auto it = got.find(submission.id);
    expect(it != got.end(), "batch: id " + submission.id + " answered");
    if (it == got.end()) continue;
    std::size_t done_frames = 0;
    for (const std::string& frame : it->second) {
      const std::optional<std::string> stripped = strip_request_id(frame);
      if (stripped.has_value() && stripped->rfind("{\"done\":true,", 0) == 0) ++done_frames;
    }
    expect(done_frames == 1, "batch/" + submission.id + ": exactly one done frame, got " +
                                 std::to_string(done_frames));
    verify_request("batch/" + submission.id, submission.id, it->second,
                   submission.expected);
  }
  expect(fs::exists(fs::path(ws.spool) / "job1.req.done"), "batch: input sealed");
  expect_no_orphans(ws.spool, "batch");
}

// ---- phase: mid-sweep kills -------------------------------------------------

void run_sweep_phase(const std::string& serve_bin, int kill_points) {
  const Workspace ws{"sweep"};
  const SweepSpec sweep = wide_sweep();
  const ExpectedFrames expected = offline_sweep(sweep);
  const std::uint64_t grid = sweep.size();
  expect(grid == 40, "sweep: 40 grid points");

  {
    std::ofstream out{fs::path(ws.spool) / "sweep.tmp"};
    out << with_request_id(sweep.to_json(), "sweep-1") << '\n';
  }
  fs::rename(fs::path(ws.spool) / "sweep.tmp", fs::path(ws.spool) / "sweep.req");

  // Durable events: 1 accept + 1 running + 40 frame appends + 1 done.  These
  // ordinals land deep inside the frame stream — kills mid-chunk, past at
  // least one --chunk 8 checkpoint.
  std::vector<std::uint64_t> kills;
  for (int i = 0; i < kill_points; ++i) {
    kills.push_back(14 + 12 * static_cast<std::uint64_t>(i));
  }

  // Run round by round so the checkpoint can be inspected BETWEEN restarts.
  const std::string checkpoint_path =
      ws.state + "/frames/" + arsf::serve::Journal::frame_file_stem("sweep-1") +
      ".progress";
  const std::string out_path = (fs::path(ws.spool) / "sweep.out").string();
  const std::string plan_path = temp_path("arsf_recovery_sweep_plan.json");
  int killed = 0;
  for (std::size_t round = 0;; ++round) {
    // Before an armed restart: the previous kill must have left a real
    // interior checkpoint (the resume token of PR 5's machinery).
    std::optional<arsf::scenario::SweepCheckpoint> checkpoint;
    if (killed > 0) {
      try {
        checkpoint = arsf::scenario::load_sweep_checkpoint(checkpoint_path);
      } catch (const std::exception& e) {
        expect(false, std::string{"sweep: checkpoint unreadable: "} + e.what());
      }
      expect(checkpoint.has_value() && checkpoint->next_index > 0 &&
                 checkpoint->next_index < grid,
             "sweep: interior checkpoint after kill, next_index " +
                 std::to_string(checkpoint ? checkpoint->next_index : 0));
    }

    std::vector<std::string> args{"--spool",   ws.spool,   "--state-dir", ws.state,
                                  "--workers", "2",        "--spool-poll-ms", "20",
                                  "--chunk",   "8",        "--stats"};
    const bool armed = round < kills.size();
    if (armed) {
      write_crash_plan(plan_path, kills[round]);
      args.push_back("--fault-plan");
      args.push_back(plan_path);
    }
    const std::string log_path = temp_path("arsf_recovery_sweep_log" + std::to_string(round));
    const pid_t pid = spawn_daemon(serve_bin, args, log_path);
    expect(pid > 0, "sweep: fork");
    if (pid <= 0) return;

    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
    int status = 0;
    bool exited = false;
    while (std::chrono::steady_clock::now() < deadline) {
      if (wait_exit(pid, 0, status)) {
        exited = true;
        break;
      }
      if (fs::exists(out_path)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // A restart that found a checkpoint must have resumed AT it: only the
    // tail past next_index is re-evaluated.  (The kill ordinals are all deep
    // in the frame stream, so even a killed round logged the resume first.)
    if (checkpoint.has_value()) {
      const std::string resumed_at =
          "resuming sweep request 'sweep-1' at grid index " +
          std::to_string(checkpoint->next_index) + "/" + std::to_string(grid);
      expect(file_contains(log_path, resumed_at),
             "sweep: round " + std::to_string(round) + " log proves \"" + resumed_at +
                 "\"");
    }

    if (exited) {
      expect(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
             "sweep: round " + std::to_string(round) + " daemon must die by SIGKILL");
      if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ++killed;
      continue;
    }
    if (!fs::exists(out_path)) {
      expect(false, "sweep: neither death nor output within the deadline");
      ::kill(pid, SIGKILL);
      (void)wait_exit(pid, 10'000, status);
      return;
    }
    stop_daemon(pid, "sweep: final round");
    break;
  }
  expect(killed >= 1, "sweep: at least one seeded SIGKILL must land");

  const std::map<std::string, std::vector<std::string>> got = read_out_file(out_path);
  const auto it = got.find("sweep-1");
  expect(it != got.end(), "sweep: sweep-1 answered");
  if (it != got.end()) {
    verify_request("sweep/sweep-1", "sweep-1", it->second, expected);
  }
  expect(!fs::exists(checkpoint_path), "sweep: checkpoint removed on completion");
  expect_no_orphans(ws.spool, "sweep");
}

// ---- phase: request_id dedup across restart ---------------------------------

void run_dedup_phase(const std::string& serve_bin) {
  const Workspace ws{"dedup"};
  const std::string socket_path = temp_path("arsf_recovery_dedup.sock");
  const std::vector<std::string> args{"--socket", socket_path, "--state-dir", ws.state,
                                      "--workers", "2", "--stats"};

  const Scenario plain = cheap("recovery/dup", 6.0);
  const ExpectedFrames plain_expected = offline_scenario(plain);
  const std::string plain_line = with_request_id(plain.to_json(), "dup-1");
  // Escaped id: quotes and a backslash must round-trip through the journal.
  const std::string escaped_id = "dup \"two\"\\slash";
  const std::string escaped_line =
      "{\"request_id\":\"dup \\\"two\\\"\\\\slash\"," + plain.to_json().substr(1);

  // First life: answer both ids, then die without warning.
  const std::string log1 = temp_path("arsf_recovery_dedup_log1");
  const pid_t first = spawn_daemon(serve_bin, args, log1);
  expect(first > 0, "dedup: fork");
  std::map<std::string, std::vector<std::string>> before;
  {
    Client client{socket_path};
    expect(client.connected(), "dedup: first connect");
    client.send_line(plain_line);
    client.send_line(escaped_line);
    expect(client.collect({"dup-1", escaped_id}, before), "dedup: first answers");
    verify_request("dedup/first/dup-1", "dup-1", before["dup-1"], plain_expected);
    verify_request("dedup/first/escaped", escaped_id, before[escaped_id], plain_expected);
  }
  expect(wait_for_journal_done(ws.state + "/journal.jsonl", 2),
         "dedup: both terminal events journaled before the kill");
  ::kill(first, SIGKILL);  // an EXTERNAL kill, not a drain
  int status = 0;
  expect(wait_exit(first, 10'000, status), "dedup: first daemon reaped");

  // Second life: the same ids must be answered from the journal, byte for
  // byte, without re-executing.
  const std::string log2 = temp_path("arsf_recovery_dedup_log2");
  const pid_t second = spawn_daemon(serve_bin, args, log2);
  expect(second > 0, "dedup: second fork");
  {
    Client client{socket_path};
    expect(client.connected(), "dedup: second connect");
    client.send_line(plain_line);
    client.send_line(escaped_line);
    std::map<std::string, std::vector<std::string>> after;
    expect(client.collect({"dup-1", escaped_id}, after), "dedup: second answers");
    expect(after["dup-1"] == before["dup-1"],
           "dedup: dup-1 replayed byte-identical across the restart");
    expect(after[escaped_id] == before[escaped_id],
           "dedup: escaped id replayed byte-identical across the restart");
  }
  stop_daemon(second, "dedup: second daemon");
  expect(file_contains(log2, "deduped=2"),
         "dedup: second daemon stats prove 2 replays, 0 re-executions");

  // Third life: kill the daemon MID-sweep (seeded), restart, and re-submit
  // the same id while the recovered run is (or just was) executing — the
  // client must get the full byte-identical answer either way (follower or
  // replay), never a double execution.
  const SweepSpec sweep = wide_sweep();
  const ExpectedFrames sweep_expected = offline_sweep(sweep);
  const std::string sweep_line = with_request_id(sweep.to_json(), "sock-sweep");
  const std::string plan_path =
      write_crash_plan(temp_path("arsf_recovery_dedup_plan.json"), 20);
  std::vector<std::string> armed_args = args;
  armed_args.push_back("--fault-plan");
  armed_args.push_back(plan_path);
  armed_args.push_back("--chunk");
  armed_args.push_back("8");
  const std::string log3 = temp_path("arsf_recovery_dedup_log3");
  const pid_t third = spawn_daemon(serve_bin, armed_args, log3);
  expect(third > 0, "dedup: third fork");
  {
    Client client{socket_path};
    expect(client.connected(), "dedup: third connect");
    client.send_line(sweep_line);
    // The daemon SIGKILLs itself mid-grid; the client sees the stream die.
    while (client.read_line(60'000).has_value()) {
    }
  }
  expect(wait_exit(third, 60'000, status) && WIFSIGNALED(status) &&
             WTERMSIG(status) == SIGKILL,
         "dedup: third daemon dies by its seeded SIGKILL");

  const std::string log4 = temp_path("arsf_recovery_dedup_log4");
  std::vector<std::string> final_args = args;
  final_args.push_back("--chunk");
  final_args.push_back("8");
  const pid_t fourth = spawn_daemon(serve_bin, final_args, log4);
  expect(fourth > 0, "dedup: fourth fork");
  {
    Client client{socket_path};
    expect(client.connected(), "dedup: fourth connect");
    client.send_line(sweep_line);  // races the recovered re-queued run
    std::map<std::string, std::vector<std::string>> got;
    expect(client.collect({"sock-sweep"}, got), "dedup: recovered sweep answered");
    verify_request("dedup/sock-sweep", "sock-sweep", got["sock-sweep"], sweep_expected);
  }
  stop_daemon(fourth, "dedup: fourth daemon");
}

}  // namespace

int main(int argc, char** argv) {
  const arsf::support::ArgParser args{argc, argv};
  const std::string serve_bin = args.get_string("serve-bin", "");
  const int kill_points = static_cast<int>(args.get_int("kill-points", 3));
  g_verbose = args.get_bool("verbose", false);
  const std::vector<std::string> unknown = args.unknown();
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "unknown option: --%s\n", name.c_str());
  }
  if (!unknown.empty()) return 2;
  if (serve_bin.empty() || !fs::exists(serve_bin)) {
    std::fprintf(stderr, "usage: %s --serve-bin PATH [--kill-points N] [--verbose]\n",
                 args.program().c_str());
    return 2;
  }

  run_batch_phase(serve_bin, kill_points);
  run_sweep_phase(serve_bin, kill_points);
  run_dedup_phase(serve_bin);

  if (failures != 0) {
    std::fprintf(stderr, "recovery_smoke: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("recovery_smoke: OK\n");
  return 0;
}
