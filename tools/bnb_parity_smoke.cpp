// bnb_parity_smoke — coarsened differential sweep of the branch-and-bound
// subset search against the flat over-all-subsets loop, registered as a
// ctest in the default run (CMake label "bnb_parity_smoke").  Three layers:
//
//   * golden: every registered over-all-sets worstcase scenario vs its
//     "bnb/" twin through the Runner, metrics compared bit-exactly;
//   * randomized: --iterations seeded random (widths, f, fa, stealth) draws
//     through worst_case_over_sets / worst_case_over_sets_bnb directly,
//     comparing the max width and the reported best_set, and additionally
//     asserting the optimistic bound stays admissible on the drawn per-set
//     configurations;
//   * large-n: the bnb/large-n/ registry scenarios (no oracle exists at
//     that size) pinned thread-count invariant at {1, 0}.
//
// An ARSF_SANITIZE=address build registers this same binary with a smaller
// --iterations (see CMakeLists.txt), so the BnB engine path runs under ASan
// on every sanitized CI pass.
//
//   ./bnb_parity_smoke [--iterations N] [--seed S]

#include <chrono>
#include <cstdio>
#include <string>

#include "scenario/registry.h"
#include "scenario/runner.h"
#include "sim/engine/subset_search.h"
#include "sim/worstcase.h"
#include "support/cli.h"
#include "support/rng.h"

namespace {

bool metrics_identical(const arsf::scenario::ScenarioResult& a,
                       const arsf::scenario::ScenarioResult& b) {
  if (a.metrics.size() != b.metrics.size()) return false;
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    if (a.metrics[m].key != b.metrics[m].key || a.metrics[m].value != b.metrics[m].value) {
      return false;
    }
  }
  return true;
}

int check_registered_pairs() {
  const arsf::scenario::Runner runner;
  int failures = 0;
  int pairs = 0;
  for (const auto& scenario : arsf::scenario::registry().all()) {
    if (scenario.analysis != arsf::scenario::AnalysisKind::kWorstCase ||
        !scenario.over_all_sets) {
      continue;
    }
    const auto* bnb = arsf::scenario::registry().find("bnb/" + scenario.name);
    if (bnb == nullptr) {
      std::fprintf(stderr, "FAIL %s: missing bnb/ mirror\n", scenario.name.c_str());
      ++failures;
      continue;
    }
    ++pairs;
    const auto oracle = runner.run(scenario);
    const auto mirrored = runner.run(*bnb);
    if (!oracle.ok() || !mirrored.ok()) {
      std::fprintf(stderr, "FAIL %s: %s%s\n", scenario.name.c_str(), oracle.error.c_str(),
                   mirrored.error.c_str());
      ++failures;
      continue;
    }
    if (!metrics_identical(oracle, mirrored)) {
      std::fprintf(stderr, "FAIL %s: bnb metrics diverge from oracle\n",
                   scenario.name.c_str());
      ++failures;
    }
  }
  std::printf("bnb_parity_smoke: %d registered pairs checked\n", pairs);
  return failures;
}

int check_random_draws(int iterations, std::uint64_t seed) {
  arsf::support::Rng rng{seed};
  int failures = 0;
  for (int i = 0; i < iterations; ++i) {
    std::vector<arsf::Tick> widths;
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 5));
    for (std::size_t k = 0; k < n; ++k) widths.push_back(rng.uniform_int(1, 4));
    const int f = static_cast<int>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto fa = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n)));
    const bool undetected = rng.chance(0.7);
    const unsigned threads = rng.chance(0.5) ? 1 : 0;

    std::vector<arsf::SensorId> oracle_set;
    std::vector<arsf::SensorId> bnb_set;
    const arsf::Tick oracle =
        arsf::sim::worst_case_over_sets(widths, f, fa, &oracle_set, threads, undetected);
    const arsf::Tick bnb =
        arsf::sim::worst_case_over_sets_bnb(widths, f, fa, &bnb_set, threads, undetected);
    if (oracle != bnb || oracle_set != bnb_set) {
      std::string text;
      for (const arsf::Tick w : widths) text += std::to_string(w) + ",";
      std::fprintf(stderr, "FAIL random #%d widths {%s} f=%d fa=%zu: oracle %lld vs bnb %lld\n",
                   i, text.c_str(), f, fa, static_cast<long long>(oracle),
                   static_cast<long long>(bnb));
      ++failures;
      continue;
    }
    // Bound admissibility on the winning per-set configuration: the pruning
    // is only sound while this holds.
    if (!bnb_set.empty()) {
      const arsf::Tick bound =
          arsf::sim::engine::over_sets_optimistic_bound(widths, bnb_set, f);
      if (bound < bnb) {
        std::fprintf(stderr, "FAIL random #%d: bound %lld below result %lld\n", i,
                     static_cast<long long>(bound), static_cast<long long>(bnb));
        ++failures;
      }
    }
  }
  std::printf("bnb_parity_smoke: %d random draws checked\n", iterations);
  return failures;
}

int check_large_n_invariance() {
  const arsf::scenario::Runner runner;
  int failures = 0;
  int checked = 0;
  for (const auto* entry : arsf::scenario::registry().match("bnb/large-n/")) {
    ++checked;
    arsf::scenario::Scenario serial = *entry;
    serial.num_threads = 1;
    arsf::scenario::Scenario parallel = *entry;
    parallel.num_threads = 0;
    const auto a = runner.run(serial);
    const auto b = runner.run(parallel);
    if (!a.ok() || !b.ok() || !metrics_identical(a, b)) {
      std::fprintf(stderr, "FAIL %s: thread counts 1 and 0 diverge\n", entry->name.c_str());
      ++failures;
    }
  }
  std::printf("bnb_parity_smoke: %d large-n scenarios thread-invariant\n", checked - failures);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const arsf::support::ArgParser args{argc, argv};
  const auto iterations = static_cast<int>(args.get_int("iterations", 120));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 0xb7b5e7));

  const auto start = Clock::now();
  int failures = check_registered_pairs();
  failures += check_random_draws(iterations, seed);
  failures += check_large_n_invariance();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();

  std::printf("bnb_parity_smoke: %d failure(s) in %.2f s\n", failures, seconds);
  return failures == 0 ? 0 : 1;
}
